//===- Interpreter.cpp - IR interpreter with retirement trace ----------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecEngine.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

using namespace mperf;
using namespace mperf::vm;
using namespace mperf::ir;

struct Interpreter::Impl {
  std::map<const Function *, std::unique_ptr<CompiledFunction>> Cache;
};

//===----------------------------------------------------------------------===//
// Construction and memory layout
//===----------------------------------------------------------------------===//

static constexpr uint64_t StackSize = 8ull << 20; // 8 MiB

Interpreter::Interpreter(Module &M)
    : M(M), P(std::make_unique<Impl>()),
      RetireBuf(std::make_unique<RetiredOp[]>(RetireBufCap)) {
  // Host-level escape hatch: flip every interpreter in the process to
  // one engine without touching call sites (A/B timing, differential
  // debugging through the full Session/sweep stack).
  if (const char *E = std::getenv("MPERF_EXEC_ENGINE")) {
    if (std::string_view(E) == "reference")
      Engine = EngineKind::Reference;
    else if (std::string_view(E) == "microop")
      Engine = EngineKind::MicroOp;
  }
  uint64_t Addr = 64; // keep 0 invalid
  for (size_t I = 0, E = M.numGlobals(); I != E; ++I) {
    GlobalVariable *GV = M.globalAt(I);
    Addr = (Addr + 63) & ~63ull;
    GlobalAddrs[GV->name()] = Addr;
    Addr += GV->sizeInBytes();
  }
  Addr = (Addr + 4095) & ~4095ull;
  StackPointer = Addr;
  Memory.assign(Addr + StackSize, 0);
  // Copy initializers.
  for (size_t I = 0, E = M.numGlobals(); I != E; ++I) {
    GlobalVariable *GV = M.globalAt(I);
    const auto &Init = GV->initializer();
    if (!Init.empty())
      std::memcpy(Memory.data() + GlobalAddrs[GV->name()], Init.data(),
                  Init.size());
  }
}

Interpreter::~Interpreter() = default;

void Interpreter::registerNative(const std::string &Name, NativeFn Fn) {
  Natives[Name] = std::move(Fn);
}

void Interpreter::flushRetired() {
  if (RetireCount == 0)
    return;
  uint32_t Count = RetireCount;
  // Empty before delivery: consumers may re-enter (overflow handlers
  // charge cycles, never retire, but keep this re-entrancy safe).
  RetireCount = 0;
  for (TraceConsumer *C : Consumers)
    C->onRetireBatch(RetireBuf.get(), Count, CurrentInst);
}

void Interpreter::emitSyntheticOps(OpClass Class, unsigned Count) {
  RetiredOp Op;
  Op.Class = Class;
  Op.Inst = CurrentInst;
  for (unsigned I = 0; I != Count; ++I) {
    ++Stats.RetiredOps;
    for (TraceConsumer *C : Consumers)
      C->onRetire(Op);
  }
}

uint64_t Interpreter::globalAddress(const std::string &Name) const {
  auto It = GlobalAddrs.find(Name);
  assert(It != GlobalAddrs.end() && "unknown global");
  return It->second;
}

void Interpreter::writeMemory(uint64_t Addr, const void *Src, uint64_t Bytes) {
  assert(Addr + Bytes <= Memory.size() && "write out of bounds");
  std::memcpy(Memory.data() + Addr, Src, Bytes);
}

void Interpreter::readMemory(uint64_t Addr, void *Dst, uint64_t Bytes) const {
  assert(Addr + Bytes <= Memory.size() && "read out of bounds");
  std::memcpy(Dst, Memory.data() + Addr, Bytes);
}

double Interpreter::readF32(uint64_t Addr) const {
  float V;
  readMemory(Addr, &V, 4);
  return V;
}
double Interpreter::readF64(uint64_t Addr) const {
  double V;
  readMemory(Addr, &V, 8);
  return V;
}
uint64_t Interpreter::readI64(uint64_t Addr) const {
  uint64_t V;
  readMemory(Addr, &V, 8);
  return V;
}
void Interpreter::writeF32(uint64_t Addr, double V) {
  float F = static_cast<float>(V);
  writeMemory(Addr, &F, 4);
}
void Interpreter::writeF64(uint64_t Addr, double V) {
  writeMemory(Addr, &V, 8);
}
void Interpreter::writeI64(uint64_t Addr, uint64_t V) {
  writeMemory(Addr, &V, 8);
}

//===----------------------------------------------------------------------===//
// Compilation to slot form
//===----------------------------------------------------------------------===//

static OpClass classify(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Mul:
    return OpClass::IntMul;
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    return OpClass::IntDiv;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FNeg:
  case Opcode::FCmp:
  case Opcode::FPToSI:
  case Opcode::SIToFP:
  case Opcode::FPTrunc:
  case Opcode::FPExt:
    return OpClass::FpAdd;
  case Opcode::FMul:
    return OpClass::FpMul;
  case Opcode::Fma:
    return OpClass::FpFma;
  case Opcode::FDiv:
    return OpClass::FpDiv;
  case Opcode::Load:
    return OpClass::Load;
  case Opcode::Store:
    return OpClass::Store;
  case Opcode::Br:
  case Opcode::CondBr:
    return OpClass::Branch;
  case Opcode::Call:
    return OpClass::Call;
  case Opcode::Ret:
    return OpClass::Ret;
  case Opcode::ReduceFAdd:
    // Horizontal FP reduction: FP work proportional to the lane count;
    // classified as FP so counter-based FLOP events see it.
    return OpClass::FpAdd;
  case Opcode::Splat:
  case Opcode::ExtractElement:
  case Opcode::ReduceAdd:
  case Opcode::Select:
  case Opcode::Phi:
    return OpClass::Other;
  default:
    return OpClass::IntAlu;
  }
}

Expected<RtValue> Interpreter::run(const std::string &FnName,
                                   const std::vector<RtValue> &Args) {
  const Function *F = M.function(FnName);
  if (!F)
    return makeError<RtValue>("run: no function named '" + FnName + "'");
  TrapMessage.clear();
  RetireCount = 0;
  return callFunction(*F, Args);
}

Expected<RtValue> InterpreterAccess::exec(Interpreter &In,
                                          Interpreter::CompiledFunction &CF,
                                          const std::vector<RtValue> &Args) {
  return In.Engine == EngineKind::MicroOp ? execMicroOp(In, CF, Args)
                                          : execReference(In, CF, Args);
}

Interpreter::CompiledFunction *
InterpreterAccess::compile(Interpreter &In, const Function &F) {
  auto It = In.P->Cache.find(&F);
  if (It != In.P->Cache.end())
    return It->second.get();

  auto CF = std::make_unique<Interpreter::CompiledFunction>();
  CF->F = &F;

  std::map<const Value *, int32_t> Slots;
  int32_t NextSlot = 0;
  for (unsigned I = 0, E = F.numArgs(); I != E; ++I) {
    Slots[F.arg(I)] = NextSlot;
    CF->ArgSlots.push_back(NextSlot++);
  }
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (!I->type()->isVoid())
        Slots[I] = NextSlot++;
  CF->NumSlots = NextSlot;

  std::map<const BasicBlock *, int32_t> BlockIndex;
  int32_t BI = 0;
  for (const BasicBlock *BB : F)
    BlockIndex[BB] = BI++;

  auto MakeOperand = [&](const Value *V) -> OperandRef {
    OperandRef Ref;
    switch (V->kind()) {
    case ValueKind::ConstantInt:
      Ref.Imm = RtValue::ofInt(cast<ConstantInt>(V)->zext());
      return Ref;
    case ValueKind::ConstantFP:
      Ref.Imm = RtValue::ofFp(cast<ConstantFP>(V)->value());
      return Ref;
    case ValueKind::GlobalVariable:
      Ref.Imm = RtValue::ofInt(In.globalAddress(V->name()));
      return Ref;
    case ValueKind::Function:
      MPERF_UNREACHABLE("function-typed operands are not supported");
    case ValueKind::Argument:
    case ValueKind::Instruction: {
      auto SlotIt = Slots.find(V);
      assert(SlotIt != Slots.end() && "operand has no slot");
      Ref.Slot = SlotIt->second;
      return Ref;
    }
    }
    MPERF_UNREACHABLE("unknown value kind");
  };

  CF->Blocks.resize(F.numBlocks());
  for (const BasicBlock *BB : F) {
    CBlock &CB = CF->Blocks[BlockIndex[BB]];
    for (const Instruction *I : *BB) {
      if (I->opcode() == Opcode::Phi)
        continue; // handled by edge moves
      CInst CI;
      CI.I = I;
      CI.Op = I->opcode();
      CI.Class = classify(*I);
      if (!I->type()->isVoid())
        CI.Dest = Slots.at(I);
      for (const Value *Op : I->operands())
        CI.Ops.push_back(MakeOperand(Op));

      Type *Ty = I->type();
      CI.Lanes = static_cast<uint16_t>(Ty->numElements());
      if (I->opcode() == Opcode::Load) {
        CI.ElemBytes = Ty->scalarType()->sizeInBytes();
        CI.HasStrideOperand = I->hasVectorStrideOperand();
        CI.F32 = Ty->scalarType()->kind() == TypeKind::F32;
        CI.IsFp = Ty->scalarType()->isFloat();
        CI.IntBits =
            Ty->scalarType()->isInteger() ? Ty->scalarType()->integerBits()
                                          : 64;
      } else if (I->opcode() == Opcode::Store) {
        Type *VTy = I->operand(0)->type();
        CI.Lanes = static_cast<uint16_t>(VTy->numElements());
        CI.ElemBytes = VTy->scalarType()->sizeInBytes();
        CI.HasStrideOperand = I->hasVectorStrideOperand();
        CI.F32 = VTy->scalarType()->kind() == TypeKind::F32;
        CI.IsFp = VTy->scalarType()->isFloat();
        CI.IntBits = VTy->scalarType()->isInteger()
                         ? VTy->scalarType()->integerBits()
                         : 64;
      } else if (Ty->scalarType()->isInteger()) {
        CI.IntBits = Ty->scalarType()->integerBits();
      } else if (Ty->scalarType()->isFloat()) {
        CI.F32 = Ty->scalarType()->kind() == TypeKind::F32;
      }
      if (I->isCast() && I->operand(0)->type()->scalarType()->isInteger())
        CI.SrcBits = I->operand(0)->type()->scalarType()->integerBits();
      if (I->opcode() == Opcode::ICmp)
        CI.IPred = I->icmpPred();
      if (I->opcode() == Opcode::FCmp)
        CI.FPred = I->fcmpPred();
      if (I->opcode() == Opcode::Alloca)
        CI.AllocaBytes = I->allocaBytes();
      if (I->opcode() == Opcode::Call)
        CI.Callee = I->callee();
      if (I->numSuccessors() > 0)
        CI.Succ0 = BlockIndex.at(I->successor(0));
      if (I->numSuccessors() > 1)
        CI.Succ1 = BlockIndex.at(I->successor(1));
      // Vector ops over operands (reductions, extracts) report operand
      // lanes for the trace.
      if (I->opcode() == Opcode::ReduceFAdd ||
          I->opcode() == Opcode::ReduceAdd ||
          I->opcode() == Opcode::ExtractElement)
        CI.Lanes =
            static_cast<uint16_t>(I->operand(0)->type()->numElements());
      CB.Insts.push_back(std::move(CI));
    }

    // Edge moves for each successor's phis.
    const Instruction *Term = BB->terminator();
    assert(Term && "block without terminator reached compilation");
    CB.Moves.resize(Term->numSuccessors());
    for (unsigned S = 0, E = Term->numSuccessors(); S != E; ++S) {
      const BasicBlock *Succ = Term->successor(S);
      for (const Instruction *Phi : Succ->phis()) {
        const Value *Incoming = Phi->incomingValueFor(BB);
        assert(Incoming && "phi missing incoming for predecessor");
        CB.Moves[S].push_back(
            EdgeMove{Slots.at(Phi), MakeOperand(Incoming),
                     static_cast<uint16_t>(Phi->type()->numElements())});
      }
    }
  }

  Interpreter::CompiledFunction *Raw = CF.get();
  In.P->Cache[&F] = std::move(CF);
  return Raw;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

/// Masks \p V to \p Bits.
inline uint64_t maskTo(uint64_t V, unsigned Bits) {
  return Bits >= 64 ? V : (V & ((1ULL << Bits) - 1));
}

/// Sign-extends \p V from \p Bits.
inline int64_t signExt(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t SignBit = 1ULL << (Bits - 1);
  uint64_t Mask = (1ULL << Bits) - 1;
  V &= Mask;
  return (V & SignBit) ? static_cast<int64_t>(V | ~Mask)
                       : static_cast<int64_t>(V);
}

} // namespace

Expected<RtValue>
Interpreter::callFunction(const Function &F, const std::vector<RtValue> &Args) {
  ++Stats.Calls;
  if (F.isDeclaration()) {
    auto It = Natives.find(F.name());
    if (It == Natives.end())
      return makeError<RtValue>("call to unregistered native function '" +
                                F.name() + "'");
    for (TraceConsumer *C : Consumers)
      C->onCallEnter(F);
    RtValue Result = It->second(*this, Args);
    for (TraceConsumer *C : Consumers)
      C->onCallExit(F);
    return Result;
  }
  CompiledFunction *CF = InterpreterAccess::compile(*this, F);
  return InterpreterAccess::exec(*this, *CF, Args);
}

Expected<RtValue>
InterpreterAccess::execReference(Interpreter &In,
                                 Interpreter::CompiledFunction &CF,
                                 const std::vector<RtValue> &Args) {
  const Function &F = *CF.F;
  assert(Args.size() == F.numArgs() && "argument count mismatch");

  std::vector<RtValue> Regs(CF.NumSlots);
  for (unsigned I = 0, E = Args.size(); I != E; ++I)
    Regs[CF.ArgSlots[I]] = Args[I];

  uint64_t SavedSP = In.StackPointer;
  In.CallStack.push_back(&F);
  for (TraceConsumer *C : In.Consumers)
    C->onCallEnter(F);

  auto Leave = [&]() {
    for (TraceConsumer *C : In.Consumers)
      C->onCallExit(F);
    In.CallStack.pop_back();
    In.StackPointer = SavedSP;
  };

  auto Val = [&Regs](const OperandRef &Ref) -> const RtValue & {
    return Ref.Slot >= 0 ? Regs[Ref.Slot] : Ref.Imm;
  };

  // Scratch for parallel phi moves.
  std::vector<RtValue> MoveScratch;

  int32_t Block = 0;
  size_t Index = 0;
  while (true) {
    CBlock &CB = CF.Blocks[Block];
    if (Index >= CB.Insts.size())
      return makeError<RtValue>("interpreter: fell off the end of a block");
    CInst &CI = CB.Insts[Index];

    if (++In.Stats.RetiredOps > In.Fuel) {
      Leave();
      return makeError<RtValue>("interpreter: fuel exhausted (possible "
                                "infinite loop) in '" +
                                F.name() + "'");
    }

    // The trace record; filled per op and emitted at the bottom.
    RetiredOp Op;
    Op.Class = CI.Class;
    Op.Inst = CI.I;
    Op.Lanes = CI.Lanes;
    In.CurrentInst = CI.I;

    int32_t NextBlock = -1;
    unsigned TakenEdge = 0;

    switch (CI.Op) {
    //===---------------- integer binary ----------------===//
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem: {
      const RtValue &L = Val(CI.Ops[0]);
      const RtValue &R = Val(CI.Ops[1]);
      RtValue &D = Regs[CI.Dest];
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        uint64_t A = L.I[Ln], B = R.I[Ln], Out = 0;
        switch (CI.Op) {
        case Opcode::Add:
          Out = A + B;
          break;
        case Opcode::Sub:
          Out = A - B;
          break;
        case Opcode::Mul:
          Out = A * B;
          break;
        case Opcode::And:
          Out = A & B;
          break;
        case Opcode::Or:
          Out = A | B;
          break;
        case Opcode::Xor:
          Out = A ^ B;
          break;
        case Opcode::Shl:
          Out = (B & 63) >= CI.IntBits ? 0 : A << (B & 63);
          break;
        case Opcode::LShr:
          Out = (B & 63) >= CI.IntBits ? 0 : maskTo(A, CI.IntBits) >> (B & 63);
          break;
        case Opcode::AShr:
          Out = static_cast<uint64_t>(signExt(A, CI.IntBits) >>
                                      std::min<uint64_t>(B & 63, 63));
          break;
        case Opcode::SDiv:
        case Opcode::UDiv:
        case Opcode::SRem:
        case Opcode::URem: {
          if (maskTo(B, CI.IntBits) == 0) {
            Leave();
            return makeError<RtValue>("interpreter: division by zero in '" +
                                      F.name() + "'");
          }
          int64_t SA = signExt(A, CI.IntBits), SB = signExt(B, CI.IntBits);
          uint64_t UA = maskTo(A, CI.IntBits), UB = maskTo(B, CI.IntBits);
          switch (CI.Op) {
          case Opcode::SDiv:
            Out = static_cast<uint64_t>(SA / SB);
            break;
          case Opcode::UDiv:
            Out = UA / UB;
            break;
          case Opcode::SRem:
            Out = static_cast<uint64_t>(SA % SB);
            break;
          default:
            Out = UA % UB;
            break;
          }
          break;
        }
        default:
          MPERF_UNREACHABLE("non-integer opcode in integer case");
        }
        D.I[Ln] = maskTo(Out, CI.IntBits);
      }
      break;
    }

    //===---------------- fp arithmetic ----------------===//
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      const RtValue &L = Val(CI.Ops[0]);
      const RtValue &R = Val(CI.Ops[1]);
      RtValue &D = Regs[CI.Dest];
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        double A = L.F[Ln], B = R.F[Ln], Out;
        switch (CI.Op) {
        case Opcode::FAdd:
          Out = A + B;
          break;
        case Opcode::FSub:
          Out = A - B;
          break;
        case Opcode::FMul:
          Out = A * B;
          break;
        default:
          Out = A / B;
          break;
        }
        D.F[Ln] = CI.F32 ? static_cast<double>(static_cast<float>(Out)) : Out;
      }
      break;
    }
    case Opcode::FNeg: {
      const RtValue &V = Val(CI.Ops[0]);
      RtValue &D = Regs[CI.Dest];
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln)
        D.F[Ln] = -V.F[Ln];
      break;
    }
    case Opcode::Fma: {
      const RtValue &A = Val(CI.Ops[0]);
      const RtValue &B = Val(CI.Ops[1]);
      const RtValue &Cc = Val(CI.Ops[2]);
      RtValue &D = Regs[CI.Dest];
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        if (CI.F32)
          D.F[Ln] = std::fmaf(static_cast<float>(A.F[Ln]),
                              static_cast<float>(B.F[Ln]),
                              static_cast<float>(Cc.F[Ln]));
        else
          D.F[Ln] = std::fma(A.F[Ln], B.F[Ln], Cc.F[Ln]);
      }
      break;
    }

    //===---------------- comparisons ----------------===//
    case Opcode::ICmp: {
      uint64_t A = Val(CI.Ops[0]).I[0], B = Val(CI.Ops[1]).I[0];
      // Compare at the operand width; recover it from the source values'
      // instruction type via SrcBits-like caching is not available here,
      // so compare as both signed64-of-masked and unsigned64: operands
      // were stored masked to their width already.
      bool R = false;
      int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
      switch (CI.IPred) {
      case ICmpPred::EQ:
        R = A == B;
        break;
      case ICmpPred::NE:
        R = A != B;
        break;
      case ICmpPred::SLT:
        R = SA < SB;
        break;
      case ICmpPred::SLE:
        R = SA <= SB;
        break;
      case ICmpPred::SGT:
        R = SA > SB;
        break;
      case ICmpPred::SGE:
        R = SA >= SB;
        break;
      case ICmpPred::ULT:
        R = A < B;
        break;
      case ICmpPred::ULE:
        R = A <= B;
        break;
      case ICmpPred::UGT:
        R = A > B;
        break;
      case ICmpPred::UGE:
        R = A >= B;
        break;
      }
      Regs[CI.Dest].I[0] = R ? 1 : 0;
      break;
    }
    case Opcode::FCmp: {
      double A = Val(CI.Ops[0]).F[0], B = Val(CI.Ops[1]).F[0];
      bool R = false;
      switch (CI.FPred) {
      case FCmpPred::OEQ:
        R = A == B;
        break;
      case FCmpPred::ONE:
        R = A != B;
        break;
      case FCmpPred::OLT:
        R = A < B;
        break;
      case FCmpPred::OLE:
        R = A <= B;
        break;
      case FCmpPred::OGT:
        R = A > B;
        break;
      case FCmpPred::OGE:
        R = A >= B;
        break;
      }
      Regs[CI.Dest].I[0] = R ? 1 : 0;
      break;
    }

    //===---------------- casts ----------------===//
    case Opcode::Trunc:
    case Opcode::ZExt:
      Regs[CI.Dest].I[0] = maskTo(Val(CI.Ops[0]).I[0], CI.IntBits);
      break;
    case Opcode::SExt:
      Regs[CI.Dest].I[0] = maskTo(
          static_cast<uint64_t>(signExt(Val(CI.Ops[0]).I[0], CI.SrcBits)),
          CI.IntBits);
      break;
    case Opcode::FPToSI:
      Regs[CI.Dest].I[0] = maskTo(
          static_cast<uint64_t>(static_cast<int64_t>(Val(CI.Ops[0]).F[0])),
          CI.IntBits);
      break;
    case Opcode::SIToFP: {
      double V = static_cast<double>(signExt(Val(CI.Ops[0]).I[0], CI.SrcBits));
      Regs[CI.Dest].F[0] =
          CI.F32 ? static_cast<double>(static_cast<float>(V)) : V;
      break;
    }
    case Opcode::FPTrunc:
      Regs[CI.Dest].F[0] =
          static_cast<double>(static_cast<float>(Val(CI.Ops[0]).F[0]));
      break;
    case Opcode::FPExt:
      Regs[CI.Dest].F[0] = Val(CI.Ops[0]).F[0];
      break;

    //===---------------- vector support ----------------===//
    case Opcode::Splat: {
      const RtValue &V = Val(CI.Ops[0]);
      RtValue &D = Regs[CI.Dest];
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        D.I[Ln] = V.I[0];
        D.F[Ln] = V.F[0];
      }
      break;
    }
    case Opcode::ExtractElement: {
      const RtValue &V = Val(CI.Ops[0]);
      uint64_t Lane = Val(CI.Ops[1]).I[0];
      if (Lane >= CI.Lanes) {
        Leave();
        return makeError<RtValue>("interpreter: extractelement lane out of "
                                  "range in '" +
                                  F.name() + "'");
      }
      Regs[CI.Dest].I[0] = V.I[Lane];
      Regs[CI.Dest].F[0] = V.F[Lane];
      break;
    }
    case Opcode::ReduceFAdd: {
      const RtValue &V = Val(CI.Ops[0]);
      double Sum = 0.0;
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        Sum += V.F[Ln];
        if (CI.F32)
          Sum = static_cast<double>(static_cast<float>(Sum));
      }
      Regs[CI.Dest].F[0] = Sum;
      break;
    }
    case Opcode::ReduceAdd: {
      const RtValue &V = Val(CI.Ops[0]);
      uint64_t Sum = 0;
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln)
        Sum += V.I[Ln];
      Regs[CI.Dest].I[0] = maskTo(Sum, CI.IntBits);
      break;
    }

    //===---------------- memory ----------------===//
    case Opcode::Alloca: {
      uint64_t Aligned = (In.StackPointer + 15) & ~15ull;
      if (Aligned + CI.AllocaBytes > In.Memory.size()) {
        Leave();
        return makeError<RtValue>("interpreter: stack overflow in '" +
                                  F.name() + "'");
      }
      Regs[CI.Dest].I[0] = Aligned;
      In.StackPointer = Aligned + CI.AllocaBytes;
      break;
    }
    case Opcode::Load: {
      uint64_t Base = Val(CI.Ops[0]).I[0];
      int64_t Stride = CI.HasStrideOperand
                           ? static_cast<int64_t>(Val(CI.Ops[1]).I[0])
                           : static_cast<int64_t>(CI.ElemBytes);
      RtValue &D = Regs[CI.Dest];
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        uint64_t Addr = Base + static_cast<uint64_t>(Stride) * Ln;
        if (Addr + CI.ElemBytes > In.Memory.size() || Addr < 64) {
          Leave();
          return makeError<RtValue>("interpreter: load out of bounds in '" +
                                    F.name() + "'");
        }
        if (CI.IsFp && CI.F32)
          D.F[Ln] = In.readF32(Addr);
        else if (CI.IsFp)
          D.F[Ln] = In.readF64(Addr);
        else {
          uint64_t Raw = 0;
          In.readMemory(Addr, &Raw, CI.ElemBytes);
          D.I[Ln] = maskTo(Raw, CI.IntBits);
        }
      }
      In.Stats.LoadedBytes += CI.ElemBytes * CI.Lanes;
      Op.Bytes = CI.ElemBytes * CI.Lanes;
      Op.Addr = Base;
      Op.StrideBytes =
          (Stride == static_cast<int64_t>(CI.ElemBytes)) ? 0 : Stride;
      break;
    }
    case Opcode::Store: {
      const RtValue &V = Val(CI.Ops[0]);
      uint64_t Base = Val(CI.Ops[1]).I[0];
      int64_t Stride = CI.HasStrideOperand
                           ? static_cast<int64_t>(Val(CI.Ops[2]).I[0])
                           : static_cast<int64_t>(CI.ElemBytes);
      for (unsigned Ln = 0; Ln != CI.Lanes; ++Ln) {
        uint64_t Addr = Base + static_cast<uint64_t>(Stride) * Ln;
        if (Addr + CI.ElemBytes > In.Memory.size() || Addr < 64) {
          Leave();
          return makeError<RtValue>("interpreter: store out of bounds in '" +
                                    F.name() + "'");
        }
        if (CI.IsFp && CI.F32)
          In.writeF32(Addr, V.F[Ln]);
        else if (CI.IsFp)
          In.writeF64(Addr, V.F[Ln]);
        else {
          uint64_t Raw = maskTo(V.I[Ln], CI.IntBits);
          In.writeMemory(Addr, &Raw, CI.ElemBytes);
        }
      }
      In.Stats.StoredBytes += CI.ElemBytes * CI.Lanes;
      Op.Bytes = CI.ElemBytes * CI.Lanes;
      Op.Addr = Base;
      Op.StrideBytes =
          (Stride == static_cast<int64_t>(CI.ElemBytes)) ? 0 : Stride;
      break;
    }
    case Opcode::PtrAdd:
      Regs[CI.Dest].I[0] =
          Val(CI.Ops[0]).I[0] + Val(CI.Ops[1]).I[0];
      break;

    //===---------------- control flow ----------------===//
    case Opcode::Br:
      NextBlock = CI.Succ0;
      TakenEdge = 0;
      Op.Taken = true;
      break;
    case Opcode::CondBr: {
      bool Cond = Val(CI.Ops[0]).I[0] != 0;
      NextBlock = Cond ? CI.Succ0 : CI.Succ1;
      TakenEdge = Cond ? 0 : 1;
      Op.Taken = Cond;
      break;
    }
    case Opcode::Ret: {
      RtValue Result;
      if (!CI.Ops.empty())
        Result = Val(CI.Ops[0]);
      for (TraceConsumer *C : In.Consumers)
        C->onRetire(Op);
      Leave();
      return Result;
    }
    case Opcode::Call: {
      std::vector<RtValue> CallArgs;
      CallArgs.reserve(CI.Ops.size());
      for (const OperandRef &Ref : CI.Ops)
        CallArgs.push_back(Val(Ref));
      // Emit the call op before transferring control, so consumers see
      // program order.
      for (TraceConsumer *C : In.Consumers)
        C->onRetire(Op);
      Expected<RtValue> ResultOr = In.callFunction(*CI.Callee, CallArgs);
      if (!ResultOr) {
        Leave();
        return ResultOr;
      }
      if (CI.Dest >= 0)
        Regs[CI.Dest] = *ResultOr;
      ++Index;
      continue; // already emitted the trace record
    }
    case Opcode::Select: {
      bool Cond = Val(CI.Ops[0]).I[0] != 0;
      Regs[CI.Dest] = Cond ? Val(CI.Ops[1]) : Val(CI.Ops[2]);
      break;
    }
    case Opcode::Phi:
      MPERF_UNREACHABLE("phi reached execution (should be edge moves)");
    }

    for (TraceConsumer *C : In.Consumers)
      C->onRetire(Op);

    if (NextBlock >= 0) {
      // Parallel phi moves for the taken edge.
      auto &Moves = CB.Moves[TakenEdge];
      if (!Moves.empty()) {
        MoveScratch.resize(Moves.size());
        for (size_t MI = 0; MI != Moves.size(); ++MI)
          MoveScratch[MI] = Val(Moves[MI].Src);
        for (size_t MI = 0; MI != Moves.size(); ++MI)
          Regs[Moves[MI].Dest] = MoveScratch[MI];
      }
      Block = NextBlock;
      Index = 0;
      continue;
    }
    ++Index;
  }
}
