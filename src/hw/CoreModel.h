//===- CoreModel.h - Cycle-approximate core timing models -------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds the interpreter's retired-op stream into cycles and PMU events.
/// The model is analytical (reciprocal-throughput costs + cache latency +
/// a 2-bit branch predictor + a DRAM bandwidth floor), which is the level
/// of fidelity the paper's methodology consumes: architectural counters,
/// not pipeline traces.
///
/// In-order cores take full memory stalls; out-of-order cores divide them
/// by a memory-level-parallelism factor. Vector arithmetic and memory
/// have their own costs; strided (gather-like) vector accesses pay per
/// lane, which is what keeps the simulated X60's matmul far below its
/// theoretical roof, as the paper observes (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_HW_COREMODEL_H
#define MPERF_HW_COREMODEL_H

#include "hw/CacheSim.h"
#include "hw/Events.h"
#include "vm/Trace.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mperf {
namespace hw {

/// Analytical timing parameters of one core.
struct CoreConfig {
  std::string Name = "generic";
  double FreqGHz = 1.6;
  bool OutOfOrder = false;
  /// Memory-level parallelism: miss latency divisor (1 = full stall).
  double Mlp = 1.0;
  // Reciprocal throughputs, cycles per scalar op.
  double CostIntAlu = 0.5;
  double CostIntMul = 1.0;
  double CostIntDiv = 12.0;
  double CostFpAdd = 1.0;
  double CostFpMul = 1.0;
  double CostFpFma = 1.0;
  double CostFpDiv = 16.0;
  double CostBranch = 0.5;
  double CostCall = 2.0;
  double CostOther = 0.5;
  double CostLoad = 0.5;
  double CostStore = 0.5;
  // Vector unit.
  double VecOpCost = 2.0;          ///< cycles per vector arithmetic op
  double VecMemCost = 2.0;         ///< cycles per contiguous vector access
  double VecStridedLaneCost = 1.0; ///< cycles per lane of a strided access
  double BranchMissPenalty = 8.0;
  /// Retired machine instructions per IR op; models ISA lowering (x86
  /// code retires more instructions than RISC-V for the same IR, which
  /// is the instruction-count gap in the paper's Table 2).
  double InstretFactor = 1.0;
  /// Speculative FP-op counting factor for the FpOpsSpec event.
  double FpSpecFactor = 1.4;
};

/// Aggregate statistics exposed for reports and tests. The cycle buckets
/// partition Cycles and feed the Top-Down (TMA) approximation the paper
/// names as future work (§6): issue cost = retiring-ish work, memory
/// stalls, branch-misprediction recovery, and bandwidth stalls.
struct CoreStats {
  double Cycles = 0;
  double Instret = 0;
  uint64_t RetiredIrOps = 0;
  uint64_t BranchMispredicts = 0;
  double FpOpsActual = 0;
  double FpOpsSpec = 0;
  // Cycle buckets (sum == Cycles up to rounding).
  double IssueCycles = 0;     ///< per-op reciprocal-throughput cost
  double MemStallCycles = 0;  ///< cache/DRAM latency stalls on loads
  double BadSpecCycles = 0;   ///< branch misprediction penalties
  double BandwidthCycles = 0; ///< DRAM bandwidth-floor catch-up
  double FirmwareCycles = 0;  ///< addCycles (traps, SBI, handlers)
};

/// Which consumption path folds the retire ring into cycles. Both tiers
/// produce bit-identical CoreStats/CacheStats and PMU event streams; the
/// batched tier only removes interpretive overhead (virtual calls, map
/// lookups, redundant same-line cache probes), never reorders or
/// re-associates the floating-point accumulation.
enum class TimingTier : uint8_t {
  /// Column-walking batched path (retireBatch + CacheSim::accessBatch);
  /// the default.
  Batched,
  /// Op-at-a-time reference path (retireOne); selectable with
  /// MPERF_TIMING_TIER=scalar for differential testing.
  Scalar,
};

/// The timing model; attach it to an Interpreter as a TraceConsumer.
class CoreModel : public vm::TraceConsumer {
public:
  /// \p Shared, when non-null, routes this core's L2/DRAM traffic
  /// through a cluster-shared cache level (see hw::SharedL2); the
  /// private \p Cache config then describes only the L1 plus this
  /// core's *share* of the cluster's DRAM latency/bandwidth.
  CoreModel(const CoreConfig &Core, const CacheConfig &Cache,
            SharedL2 *Shared = nullptr);

  void onRetire(const vm::RetiredOp &Op) override { retireOne(Op); }

  /// Batched path of the micro-op engine: one virtual call per block,
  /// advancing the interpreter's retire cursor per op so overflow
  /// samples taken from inside the PMU chain attribute to the op being
  /// retired (identical to unbatched delivery).
  void onRetireBatch(const vm::RetiredOp *Ops, size_t Count,
                     const ir::Instruction *&RetireCursor) override;

  /// The batched tier opts in to column-form flushes; the scalar tier
  /// keeps record-at-a-time delivery so differential runs exercise the
  /// reference path end to end.
  bool wantsRetireColumns() const override {
    return Tier == TimingTier::Batched;
  }

  /// Column-form consumption: one CacheSim::accessBatch walk for the
  /// whole flush, then per-op accounting in program order. Bit-identical
  /// to retireOne() per op (same accumulation order, same event deltas,
  /// same cursor-exact sample attribution).
  void onRetireColumns(const vm::RetireColumns &Cols,
                       const ir::Instruction *&RetireCursor) override;

  /// Selects the consumption tier (tests; normal runs use the default
  /// or the MPERF_TIMING_TIER environment override read at
  /// construction).
  void setTimingTier(TimingTier T) { Tier = T; }
  TimingTier timingTier() const { return Tier; }

  //===--------------------------------------------------------------===//
  // PMU plumbing
  //===--------------------------------------------------------------===//

  /// Receives this core's per-op event deltas (normally the PMU).
  void setEventSink(std::function<void(const EventDeltas &)> Sink) {
    EventSink = std::move(Sink);
  }

  /// Current privilege mode; cycles are attributed to it.
  void setMode(PrivMode Mode) { CurrentMode = Mode; }
  PrivMode mode() const { return CurrentMode; }

  /// Charges \p Cycles directly (trap entry/exit, firmware work). Used
  /// by the kernel/SBI layers; attributed to the current mode.
  void addCycles(double Cycles);

  //===--------------------------------------------------------------===//
  // Results
  //===--------------------------------------------------------------===//

  const CoreStats &stats() const { return Stats; }
  const CacheStats &cacheStats() const { return Cache.stats(); }
  const CoreConfig &config() const { return Core; }

  double seconds() const { return Stats.Cycles / (Core.FreqGHz * 1e9); }

  /// Zeroes timing state (cycles, caches, predictor) between phases.
  void reset();

private:
  /// Per-branch state: a 2-bit saturating counter plus a loop predictor
  /// that remembers the last trip count and predicts the exit of
  /// fixed-trip loops (as real cores' loop predictors do).
  struct BranchState {
    uint8_t Counter = 2;
    uint8_t LoopConfidence = 0; ///< consecutive identical trip counts
    uint32_t Streak = 0;
    uint32_t LastTrip = 0;
  };

  void retireOne(const vm::RetiredOp &Op);
  double costFor(const vm::RetiredOp &Op);
  bool predictBranch(const vm::RetiredOp &Op);
  /// The predictor's transition function, shared by both tiers so their
  /// predictions cannot drift. Force-inlined: a call inside the batched
  /// walk would push the fp accumulators out of (caller-saved) xmm
  /// registers and put a store-forward round trip on every chain.
  [[gnu::always_inline]] static bool predictAndTrain(BranchState &State,
                                                     bool Taken);
  /// Batched-tier predictor storage: open-addressing table keyed on the
  /// branch instruction (the scalar tier keeps the std::map, so the
  /// differential matrix validates this table against it). Callers must
  /// reserve headroom first (reserveFastPred), keeping the probe loop
  /// call-free.
  [[gnu::always_inline]] BranchState &fastPredState(const ir::Instruction *Inst);
  /// Guarantees the table can absorb \p Extra new keys and stay under
  /// 3/4 load. Table geometry is batched-tier-private state: growing it
  /// earlier than strictly needed cannot perturb predictions.
  void reserveFastPred(size_t Extra);
  /// Inline front half of reserveFastPred: almost every flush has
  /// headroom already, and keeping the call out of that path saves the
  /// caller from spilling its fp accumulators around it once per flush.
  [[gnu::always_inline]] void ensureFastPred(size_t Extra) {
    if (FastPred.empty() || (FastPredUsed + Extra) * 4 >= FastPred.size() * 3)
      reserveFastPred(Extra);
  }
  template <bool HasSink>
  void retireBatch(const vm::RetireColumns &Cols,
                   const ir::Instruction *&RetireCursor);

  CoreConfig Core;
  CacheSim Cache;
  CoreStats Stats;
  PrivMode CurrentMode = PrivMode::User;
  TimingTier Tier = TimingTier::Batched;
  std::function<void(const EventDeltas &)> EventSink;
  std::map<const ir::Instruction *, BranchState> Predictor;

  //===--------------------------------------------------------------===//
  // Batched-tier hot state. Every cached value below is keyed on its
  // inputs (not dirty-flagged), so interleaved scalar-path retirements
  // (synthetic ops from native handlers) can never leave it stale.
  //===--------------------------------------------------------------===//

  /// costFor() for scalar (Lanes == 1) ops, indexed by OpClass.
  double CostScalar[unsigned(vm::OpClass::Other) + 1] = {};
  /// FLOPs per lane by OpClass (0 / 1 / 2 for FMA).
  double FlopsPerLane[unsigned(vm::OpClass::Other) + 1] = {};
  /// Bit per OpClass with FlopsPerLane != 0: the batched walk tests one
  /// register bit to skip the FLOP accumulations for integer ops (exact,
  /// because adding +0.0 to a non-negative-zero accumulator is the
  /// identity).
  uint32_t FlopClassMask = 0;
  /// latencyFor(level) / max(1, Mlp), indexed by MemLevel.
  double StallByLevel[3] = {};
  /// Bandwidth floor memo: DramBytes -> DramBytes / DramBytesPerCycle.
  uint64_t BwDramCached = 0;
  double BwFloorCached = 0;
  struct PredEntry {
    const ir::Instruction *Key = nullptr;
    BranchState State;
  };
  std::vector<PredEntry> FastPred;
  size_t FastPredUsed = 0;
  /// Flush-local scratch (capacity persists across flushes).
  std::vector<CacheAccessReq> BatchReqs;
  std::vector<CacheAccessResult> BatchRes;
  /// One entry per *memory* op of the flush, in program order: which op
  /// it is and its range in BatchReqs/BatchRes.
  struct MemRef {
    uint32_t Idx = 0;
    uint32_t First = 0;
    uint32_t Num = 0;
  };
  std::vector<MemRef> BatchMem;
};

} // namespace hw
} // namespace mperf

#endif // MPERF_HW_COREMODEL_H
