//===- miniperf-sweep.cpp - Parallel scenario-sweep CLI -------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Runs a (platform x workload x options) scenario matrix concurrently
// and reports it as a text table and, optionally, a JSON document:
//
//   miniperf-sweep --platforms all --workloads all --jobs 4
//                  --json sweep.json
//
// Every axis of the paper's tables is a flag: which simulated cores,
// which kernels, sampling vs counting (`--sampling both`), the sample
// period, and scalar vs vectorized codegen (`--vector both`).
//
//===----------------------------------------------------------------------===//

#include "driver/ScenarioMatrix.h"
#include "driver/SweepRunner.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace mperf;
using namespace mperf::driver;

namespace {

void printUsage() {
  std::printf(
      "usage: miniperf-sweep [options]\n"
      "\n"
      "  --platforms SPEC   all (default) or comma list: u74,c906,c910,"
      "x60,i5\n"
      "  --workloads SPEC   all (default) or comma list: sqlite,matmul,"
      "triad,memset,peakflops\n"
      "  --jobs N           worker threads (default 1; 0 = all cores)\n"
      "  --json FILE        also write the machine-readable report\n"
      "  --sampling MODE    on (default), off, or both\n"
      "  --period LIST      comma list of sample periods (default "
      "20000)\n"
      "  --vector MODE      off (default), on, or both\n"
      "  --keep-samples     keep per-scenario sample buffers in memory\n"
      "  --quiet            suppress per-scenario progress lines\n"
      "  --list             list platforms and workloads, then exit\n"
      "  --help             this text\n");
}

void printLists() {
  std::printf("platforms:\n");
  for (const hw::Platform &P : hw::allPlatforms())
    std::printf("  %-6s %s (%s)\n", platformKey(P).c_str(),
                P.CoreName.c_str(), P.BoardName.c_str());
  std::printf("workloads:\n");
  for (const WorkloadDesc &W : standardWorkloads())
    std::printf("  %-10s %s\n", W.Name.c_str(), W.Description.c_str());
}

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "miniperf-sweep: %s\n", Message.c_str());
  std::exit(2);
}

/// Parses a whole decimal token; dies on empty or trailing garbage, so
/// `--jobs 4x` is an error instead of silently becoming something else.
uint64_t parseUnsigned(const std::string &Flag, const std::string &Text) {
  char *End = nullptr;
  uint64_t Value = std::strtoull(Text.c_str(), &End, 10);
  if (Text.empty() || End != Text.c_str() + Text.size())
    die("bad " + Flag + " value '" + Text + "' (expected a number)");
  return Value;
}

/// Applies an on/off/both mode flag to a ScenarioMatrix axis.
void addModeAxis(ScenarioMatrix &Matrix, const std::string &Flag,
                 const std::string &Mode,
                 ScenarioMatrix &(ScenarioMatrix::*Add)(bool)) {
  if (Mode == "on")
    (Matrix.*Add)(true);
  else if (Mode == "off")
    (Matrix.*Add)(false);
  else if (Mode == "both") {
    (Matrix.*Add)(true);
    (Matrix.*Add)(false);
  } else
    die("bad " + Flag + " mode '" + Mode + "' (use on, off or both)");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string PlatformSpec = "all";
  std::string WorkloadSpec = "all";
  std::string JsonPath;
  std::string SamplingMode = "on";
  std::string VectorMode = "off";
  std::string PeriodList;
  SweepOptions Opts;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> std::string {
      if (I + 1 >= Argc)
        die("missing value after " + Arg);
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (Arg == "--list") {
      printLists();
      return 0;
    } else if (Arg == "--platforms") {
      PlatformSpec = Value();
    } else if (Arg == "--workloads") {
      WorkloadSpec = Value();
    } else if (Arg == "--jobs") {
      Opts.Jobs = static_cast<unsigned>(parseUnsigned("--jobs", Value()));
    } else if (Arg == "--json") {
      JsonPath = Value();
    } else if (Arg == "--sampling") {
      SamplingMode = Value();
    } else if (Arg == "--vector") {
      VectorMode = Value();
    } else if (Arg == "--period") {
      PeriodList = Value();
    } else if (Arg == "--keep-samples") {
      Opts.KeepSamples = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      die("unknown option '" + Arg + "' (see --help)");
    }
  }

  auto PlatformsOr = selectPlatforms(PlatformSpec);
  if (!PlatformsOr)
    die(PlatformsOr.errorMessage());
  auto WorkloadsOr = selectWorkloads(WorkloadSpec);
  if (!WorkloadsOr)
    die(WorkloadsOr.errorMessage());

  ScenarioMatrix Matrix;
  Matrix.addPlatforms(*PlatformsOr).addWorkloads(*WorkloadsOr);
  addModeAxis(Matrix, "--sampling", SamplingMode,
              &ScenarioMatrix::addSamplingMode);
  addModeAxis(Matrix, "--vector", VectorMode, &ScenarioMatrix::addVectorize);
  for (std::string_view Token : split(PeriodList, ',')) {
    std::string_view Trimmed = trim(Token);
    if (Trimmed.empty())
      continue;
    uint64_t Period = parseUnsigned("--period", std::string(Trimmed));
    if (Period == 0)
      die("bad --period value '" + std::string(Trimmed) + "' (must be "
          "positive)");
    Matrix.addSamplePeriod(Period);
  }

  std::vector<Scenario> Scenarios = Matrix.build();
  if (!Quiet)
    std::printf("sweeping %zu scenarios (%zu platforms x %zu workloads"
                "%s%s)...\n",
                Scenarios.size(), PlatformsOr->size(), WorkloadsOr->size(),
                SamplingMode == "both" ? " x sampling{on,off}" : "",
                VectorMode == "both" ? " x vector{on,off}" : "");

  if (!Quiet)
    Opts.OnResult = [](const ScenarioResult &R, size_t Done, size_t Total) {
      std::printf("  [%zu/%zu] %-24s %s\n", Done, Total, R.Name.c_str(),
                  R.Failed ? ("FAILED: " + R.Error).c_str() : "ok");
      std::fflush(stdout);
    };

  SweepRunner Runner(Opts);
  SweepReport Report = Runner.run(Scenarios);

  std::printf("\n%s", Report.toTable().render().c_str());
  std::printf("\nsweep wall-clock: %s with %u job(s)\n",
              fixed(Report.HostSeconds, 2).c_str(), Report.Jobs);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out)
      die("cannot write '" + JsonPath + "'");
    Out << Report.toJson() << "\n";
    std::printf("json report written to %s\n", JsonPath.c_str());
  }

  return Report.numFailures() == 0 ? 0 : 1;
}
