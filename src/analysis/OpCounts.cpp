//===- OpCounts.cpp - Static per-block operation counting --------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/OpCounts.h"

using namespace mperf;
using namespace mperf::analysis;
using namespace mperf::ir;

BlockOpCounts mperf::analysis::countBlockOps(const BasicBlock &BB) {
  BlockOpCounts Counts;
  for (const Instruction *I : BB) {
    switch (I->opcode()) {
    case Opcode::Load:
      Counts.BytesLoaded += I->accessedBytes();
      break;
    case Opcode::Store:
      Counts.BytesStored += I->accessedBytes();
      break;
    default:
      if (I->isIntArith())
        Counts.IntOps += I->type()->numElements();
      else
        Counts.FloatOps += I->flopCount();
      break;
    }
  }
  return Counts;
}

BlockOpCounts mperf::analysis::countFunctionOps(const Function &F) {
  BlockOpCounts Counts;
  for (const BasicBlock *BB : F)
    Counts += countBlockOps(*BB);
  return Counts;
}
