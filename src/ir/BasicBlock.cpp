//===- BasicBlock.cpp - IR basic blocks ------------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace mperf;
using namespace mperf::ir;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  I->setParent(this);
  Instructions.push_back(std::move(I));
  return Instructions.back().get();
}

Instruction *BasicBlock::insertAt(size_t Index, std::unique_ptr<Instruction> I) {
  assert(Index <= Instructions.size() && "insert position out of range");
  I->setParent(this);
  auto It = Instructions.insert(Instructions.begin() + Index, std::move(I));
  return It->get();
}

std::unique_ptr<Instruction> BasicBlock::remove(size_t Index) {
  assert(Index < Instructions.size() && "remove position out of range");
  std::unique_ptr<Instruction> I = std::move(Instructions[Index]);
  Instructions.erase(Instructions.begin() + Index);
  I->setParent(nullptr);
  return I;
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Index = 0, E = Instructions.size(); Index != E; ++Index)
    if (Instructions[Index].get() == I)
      return Index;
  return SIZE_MAX;
}

Instruction *BasicBlock::terminator() const {
  if (Instructions.empty())
    return nullptr;
  Instruction *Last = Instructions.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = terminator();
  if (!Term)
    return {};
  std::vector<BasicBlock *> Succs;
  for (unsigned I = 0, E = Term->numSuccessors(); I != E; ++I)
    Succs.push_back(Term->successor(I));
  return Succs;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  if (!Parent)
    return Preds;
  for (BasicBlock *BB : *Parent) {
    for (BasicBlock *Succ : BB->successors()) {
      if (Succ != this)
        continue;
      Preds.push_back(BB);
      break;
    }
  }
  return Preds;
}

std::vector<Instruction *> BasicBlock::phis() const {
  std::vector<Instruction *> Result;
  for (const auto &I : Instructions) {
    if (I->opcode() != Opcode::Phi)
      break;
    Result.push_back(I.get());
  }
  return Result;
}
