//===- Runtime.h - Roofline instrumentation runtime ------------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of §4.2-4.3: the mperf_roofline_internal_* functions
/// the instrumented call sites invoke. It keeps a stack of active loop
/// handles, accumulates per-loop byte/op counters reported by the
/// instrumented clones, measures each region's cycles in both phases, and
/// answers the "is instrumentation enabled" query from the simulated
/// process environment (MPERF_ROOFLINE_INSTRUMENTED), mirroring the
/// paper's environment-variable dispatch.
///
/// Each runtime entry burns a few synthetic ops through the interpreter,
/// so the timing models observe the instrumentation overhead the paper
/// discusses (§4.4).
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_ROOFLINE_RUNTIME_H
#define MPERF_ROOFLINE_RUNTIME_H

#include "hw/CoreModel.h"
#include "support/Env.h"
#include "transform/RooflineInstrumenter.h"
#include "vm/Interpreter.h"

#include <vector>

namespace mperf {
namespace roofline {

/// Accumulated measurements for one instrumented loop nest.
struct LoopRecord {
  transform::InstrumentedLoop Info;
  uint64_t BaselineInvocations = 0;
  uint64_t InstrumentedInvocations = 0;
  /// Cycles spent inside the region per phase.
  double BaselineCycles = 0;
  double InstrumentedCycles = 0;
  /// IR-derived operation counters (instrumented phase only).
  uint64_t BytesLoaded = 0;
  uint64_t BytesStored = 0;
  uint64_t IntOps = 0;
  uint64_t FpOps = 0;

  uint64_t totalBytes() const { return BytesLoaded + BytesStored; }
};

/// The runtime; bind() registers its native functions with a VM.
class RooflineRuntime {
public:
  RooflineRuntime(std::vector<transform::InstrumentedLoop> Loops,
                  const Environment &Env);

  /// Registers mperf_rt_* native handlers with \p Vm; cycle timestamps
  /// come from \p Core.
  void bind(vm::Interpreter &Vm, hw::CoreModel &Core);

  const std::vector<LoopRecord> &records() const { return Records; }

  /// True when MPERF_ROOFLINE_INSTRUMENTED is set in the simulated
  /// environment.
  bool instrumentationEnabled() const { return Instrumented; }

private:
  struct ActiveLoop {
    uint64_t LoopId;
    double StartCycles;
  };

  std::vector<LoopRecord> Records;
  bool Instrumented = false;
  std::vector<ActiveLoop> Stack;
  hw::CoreModel *Core = nullptr;
};

} // namespace roofline
} // namespace mperf

#endif // MPERF_ROOFLINE_RUNTIME_H
