//===- Instance.h - One mutable run of a compiled Program ------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Instance is everything that *changes* while executing a
/// vm::Program: the simulated memory and stack pointer, the call stack,
/// run statistics, fuel, engine selection, registered native handlers,
/// attached trace consumers and the retirement ring. The Program it
/// executes is immutable and shared — any number of Instances, on any
/// threads, can run the same Program concurrently.
///
/// Executes IR over a flat simulated memory, emitting a RetiredOp per
/// instruction to attached TraceConsumers (the core timing models and
/// PMU live behind that interface). Declarations dispatch to native
/// handlers registered by name — this is how the Roofline runtime's
/// mperf_rt_* entry points are bound.
///
/// `vm::Interpreter` (vm/Interpreter.h) is a compatibility alias for
/// this class; the historic constructor taking a bare ir::Module
/// compiles a private Program on the spot.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_VM_INSTANCE_H
#define MPERF_VM_INSTANCE_H

#include "support/Error.h"
#include "vm/Program.h"
#include "vm/RtValue.h"
#include "vm/Trace.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mperf {
namespace vm {

/// Statistics of one run.
struct RunStats {
  uint64_t RetiredOps = 0;
  uint64_t Calls = 0;
  uint64_t LoadedBytes = 0;
  uint64_t StoredBytes = 0;
};

/// A native handler for a declared function.
/// Receives the evaluated arguments; returns the result value (ignored
/// for void functions).
class Instance;
struct InterpreterAccess;
using NativeFn =
    std::function<RtValue(Instance &, const std::vector<RtValue> &)>;

/// Which execution engine runs compiled functions.
enum class EngineKind {
  /// Pre-decoded micro-op stream with dense handler-table dispatch and
  /// batched trace delivery (the default; see vm/MicroOp.h).
  MicroOp,
  /// The original per-instruction switch loop over the slot form; kept
  /// as the semantic baseline for differential testing.
  Reference,
};

/// One mutable execution of an immutable Program.
class Instance {
public:
  /// Runs a shared compiled program. The Program (and through it the
  /// module) stays alive for the Instance's lifetime.
  explicit Instance(std::shared_ptr<const Program> P);

  /// Compatibility path: compiles \p M privately (unverified, as the
  /// historic interpreter did) and runs that. The caller keeps \p M
  /// alive and unmodified for the Instance's lifetime.
  explicit Instance(ir::Module &M);

  ~Instance();

  //===--------------------------------------------------------------===//
  // Configuration
  //===--------------------------------------------------------------===//

  /// Attaches a consumer; all retired ops flow to every consumer in
  /// attachment order.
  void addConsumer(TraceConsumer *C) { Consumers.push_back(C); }

  /// Registers the native implementation of a declared function.
  void registerNative(const std::string &Name, NativeFn Fn);

  /// Caps retired operations; exceeded -> run error (default 4e9).
  void setFuel(uint64_t MaxOps) { Fuel = MaxOps; }

  /// Selects the execution engine. Both engines produce bit-identical
  /// results, traces, and trap messages; Reference exists for
  /// differential testing and as a readable statement of the semantics.
  void setEngine(EngineKind Kind) { Engine = Kind; }
  EngineKind engine() const { return Engine; }

  //===--------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------===//

  /// Calls \p FnName with integer/pointer arguments. Returns the return
  /// value (zero RtValue for void).
  Expected<RtValue> run(const std::string &FnName,
                        const std::vector<RtValue> &Args = {});

  const RunStats &stats() const { return Stats; }

  /// Lets native handlers model their own execution cost: emits
  /// \p Count synthetic retired ops of class \p Class attributed to the
  /// calling instruction. Used by the Roofline runtime so that
  /// instrumentation overhead is visible to the timing models (§4.4).
  void emitSyntheticOps(OpClass Class, unsigned Count);

  //===--------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------===//

  /// Address of a global, as laid out by the Program.
  uint64_t globalAddress(const std::string &Name) const {
    return Prog->globalAddress(Name);
  }

  /// Raw access for tests and workload setup/checks.
  void writeMemory(uint64_t Addr, const void *Src, uint64_t Bytes);
  void readMemory(uint64_t Addr, void *Dst, uint64_t Bytes) const;

  double readF32(uint64_t Addr) const;
  double readF64(uint64_t Addr) const;
  uint64_t readI64(uint64_t Addr) const;
  void writeF32(uint64_t Addr, double V);
  void writeF64(uint64_t Addr, double V);
  void writeI64(uint64_t Addr, uint64_t V);

  uint64_t memorySize() const { return Memory.size(); }

  //===--------------------------------------------------------------===//
  // Introspection (used by the sampling PMU handler)
  //===--------------------------------------------------------------===//

  /// Current call stack, outermost first. Valid during consumer
  /// callbacks.
  const std::vector<const ir::Function *> &callStack() const {
    return CallStack;
  }

  /// The instruction being retired, during consumer callbacks.
  const ir::Instruction *currentInstruction() const { return CurrentInst; }

  /// The immutable program this instance executes.
  const Program &program() const { return *Prog; }

  const ir::Module &module() const { return Prog->module(); }

  /// Capacity of the retirement ring buffer. Kept small (3 KiB) so the
  /// ring, the register file, and the consumers' hot state (cache-sim
  /// metadata, predictor nodes) stay L1-resident together. Public so
  /// batch-granular schedulers (ClusterSession's round-robin quantum)
  /// can align their slices to whole flushes.
  static constexpr uint32_t RetireBufCap = 64;

private:
  Expected<RtValue> callFunction(const ir::Function &F,
                                 const std::vector<RtValue> &Args);

  /// Delivers all buffered retired ops to every consumer (one
  /// onRetireBatch call per consumer) and empties the buffer. The
  /// micro-op engine flushes when the ring fills and at every event
  /// whose program order matters (calls, returns, traps), so each
  /// consumer sees the exact unbatched sequence.
  void flushRetired();

  std::shared_ptr<const Program> Prog;
  std::vector<TraceConsumer *> Consumers;
  std::map<std::string, NativeFn> Natives;
  std::vector<uint8_t> Memory;
  std::vector<const ir::Function *> CallStack;
  const ir::Instruction *CurrentInst = nullptr;
  RunStats Stats;
  uint64_t Fuel = 4ull * 1000 * 1000 * 1000;
  uint64_t StackPointer = 0;
  EngineKind Engine = EngineKind::MicroOp;
  std::unique_ptr<RetiredOp[]> RetireBuf;
  uint32_t RetireCount = 0;
  /// Column-form transpose scratch for flushRetired(): filled once per
  /// flush when any attached consumer wants columns (see
  /// TraceConsumer::wantsRetireColumns), aliased by the RetireColumns
  /// view handed to consumers.
  uint8_t ColClasses[RetireBufCap];
  uint8_t ColTaken[RetireBufCap];

  friend struct InterpreterAccess;
};

} // namespace vm
} // namespace mperf

#endif // MPERF_VM_INSTANCE_H
