//===- ScenarioMatrix.h - Cross-product scenario builder -------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the cross product of registered platforms, workloads and
/// option axes (sampling on/off, sample period, vectorized/scalar) into
/// a deterministic list of Scenarios — the shape of every table in the
/// paper, generalized. Axes left empty take a single default value, so
/// `ScenarioMatrix().addPlatforms(db).addWorkloads(wls).build()` is the
/// plain platform x workload matrix.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_DRIVER_SCENARIOMATRIX_H
#define MPERF_DRIVER_SCENARIOMATRIX_H

#include "driver/Scenario.h"

namespace mperf {
namespace driver {

/// Accumulates axis values and emits the cross product.
class ScenarioMatrix {
public:
  ScenarioMatrix &addPlatform(const hw::Platform &P);
  ScenarioMatrix &addPlatforms(const std::vector<hw::Platform> &Ps);
  /// Adds a multi-core cluster to the platform axis. Cluster cells come
  /// after every plain-platform cell in build() order, named by the
  /// cluster key ("matmul@c906x4") and tagged cluster=/cores=.
  ScenarioMatrix &addCluster(const hw::Cluster &C);
  ScenarioMatrix &addClusters(const std::vector<hw::Cluster> &Cs);
  ScenarioMatrix &addWorkload(WorkloadDesc W);
  ScenarioMatrix &addWorkloads(const std::vector<WorkloadDesc> &Ws);

  /// Adds a value to the sampling axis (default when empty: {on}).
  ScenarioMatrix &addSamplingMode(bool Sampling);
  /// Adds a value to the sample-period axis (default: {20000}). The
  /// axis multiplies only the sampling-on leg; counting-only runs are
  /// period-independent and appear once.
  ScenarioMatrix &addSamplePeriod(uint64_t Period);
  /// Adds a value to the vectorization axis (default: {off}).
  ScenarioMatrix &addVectorize(bool On);
  /// Interpreter fuel applied to every scenario.
  ScenarioMatrix &setFuel(uint64_t MaxOps);
  /// Deterministic interleave quantum applied to every cluster cell
  /// (retired IR ops per round-robin turn; 0 keeps each cluster's own
  /// default). Not an axis: it does not multiply the matrix.
  ScenarioMatrix &setInterleaveQuantum(uint64_t Quantum);
  /// Analyses (AnalysisRegistry names) attached to every scenario; the
  /// runner executes them over each scenario's Profile and the report
  /// embeds their JSON per scenario. Not an axis: the list does not
  /// multiply the matrix.
  ScenarioMatrix &setAnalyses(std::vector<std::string> Names);

  /// Number of scenarios build() will produce.
  size_t size() const;

  /// The cross product, ordered platform-major (then workload, sampling,
  /// period, vectorize) — a deterministic order reports rely on.
  std::vector<Scenario> build() const;

private:
  std::vector<hw::Platform> Platforms;
  std::vector<hw::Cluster> Clusters;
  std::vector<WorkloadDesc> Workloads;
  std::vector<bool> SamplingAxis;
  std::vector<uint64_t> PeriodAxis;
  std::vector<bool> VectorizeAxis;
  uint64_t Fuel = 0; // 0: keep the SessionOptions default
  uint64_t InterleaveQuantum = 0; // 0: keep each cluster's default
  std::vector<std::string> Analyses;
};

} // namespace driver
} // namespace mperf

#endif // MPERF_DRIVER_SCENARIOMATRIX_H
