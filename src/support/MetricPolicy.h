//===- MetricPolicy.h - Which report keys the perf gates skip --*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one shared definition of which report keys are *advisory* —
/// allowed to drift between runs — for every diff gate in the tree
/// (`miniperf-sweep --baseline` and `tools/bench-diff`). Everything
/// else in a report is a deterministic simulation metric and gates.
///
/// The skip list, documented here and nowhere else:
///
///  - wall-clock keys: any key ending in `host_seconds` (scenario
///    total, `build_host_seconds`, `exec_host_seconds`, sweep
///    `host_seconds`), or in `host_ns` / `host_ms` (self-metric
///    timings such as compile-phase and serialization wall times);
///  - the `self_metrics` block: the simulator's observability data
///    (cache traffic, worker utilization, batch-size histograms) is a
///    property of the host run, never of the simulated machine.
///
/// Build wall-times are covered by the first rule (`*host_seconds`)
/// and, inside self_metrics, by the second.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_SUPPORT_METRICPOLICY_H
#define MPERF_SUPPORT_METRICPOLICY_H

#include "support/Format.h"

#include <string_view>

namespace mperf {

/// True when \p Key names an advisory (non-gating) report entry. Diff
/// gates must compare such keys informationally at most, never fail on
/// them.
inline bool isAdvisoryMetricKey(std::string_view Key) {
  return endsWith(Key, "host_seconds") || endsWith(Key, "host_ns") ||
         endsWith(Key, "host_ms") || Key == "self_metrics";
}

} // namespace mperf

#endif // MPERF_SUPPORT_METRICPOLICY_H
