//===- CoreModel.cpp - Cycle-approximate core timing models -------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "hw/CoreModel.h"

#include <algorithm>

using namespace mperf;
using namespace mperf::hw;
using namespace mperf::vm;

std::string_view mperf::hw::eventName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::Cycles:
    return "cycles";
  case EventKind::Instret:
    return "instructions";
  case EventKind::L1DMiss:
    return "l1d-miss";
  case EventKind::L2Miss:
    return "l2-miss";
  case EventKind::BranchMispredict:
    return "branch-miss";
  case EventKind::UModeCycles:
    return "u_mode_cycle";
  case EventKind::MModeCycles:
    return "m_mode_cycle";
  case EventKind::SModeCycles:
    return "s_mode_cycle";
  case EventKind::FpOpsSpec:
    return "fp-ops-spec";
  }
  return "unknown";
}

CoreModel::CoreModel(const CoreConfig &Core, const CacheConfig &Cache,
                     SharedL2 *Shared)
    : Core(Core), Cache(Cache) {
  if (Shared)
    this->Cache.attachSharedL2(Shared);
}

void CoreModel::reset() {
  Cache.reset();
  Stats = CoreStats();
  Predictor.clear();
}

void CoreModel::addCycles(double Cycles) {
  Stats.Cycles += Cycles;
  Stats.FirmwareCycles += Cycles;
  if (EventSink) {
    EventDeltas D;
    D.Cycles = Cycles;
    D.Mode = CurrentMode;
    EventSink(D);
  }
}

bool CoreModel::predictBranch(const vm::RetiredOp &Op) {
  // A 2-bit saturating counter combined with a loop predictor: when a
  // branch was last seen exiting after N consecutive taken iterations,
  // the exit at iteration N is predicted correctly the next time around
  // (fixed-trip inner loops are free, as on real cores). Returns true
  // when the prediction was correct.
  BranchState &State = Predictor.try_emplace(Op.Inst).first->second;

  // The loop predictor only takes over once the trip count repeated;
  // irregular branches stay on the 2-bit counter.
  bool Predicted;
  if (State.LoopConfidence >= 1 && State.LastTrip > 0)
    Predicted = State.Streak + 1 < State.LastTrip; // exit on the last trip
  else
    Predicted = State.Counter >= 2;
  bool Correct = Predicted == Op.Taken;

  if (Op.Taken) {
    ++State.Streak;
    State.Counter = static_cast<uint8_t>(std::min<int>(State.Counter + 1, 3));
  } else {
    uint32_t Trip = State.Streak + 1;
    if (Trip == State.LastTrip)
      State.LoopConfidence =
          static_cast<uint8_t>(std::min<int>(State.LoopConfidence + 1, 3));
    else
      State.LoopConfidence = 0;
    State.LastTrip = Trip;
    State.Streak = 0;
    State.Counter = static_cast<uint8_t>(std::max<int>(State.Counter - 1, 0));
  }
  return Correct;
}

double CoreModel::costFor(const vm::RetiredOp &Op) {
  bool IsVector = Op.Lanes > 1;
  switch (Op.Class) {
  case OpClass::IntAlu:
    return IsVector ? Core.VecOpCost : Core.CostIntAlu;
  case OpClass::IntMul:
    return IsVector ? Core.VecOpCost : Core.CostIntMul;
  case OpClass::IntDiv:
    return Core.CostIntDiv * (IsVector ? Op.Lanes / 2.0 : 1.0);
  case OpClass::FpAdd:
    return IsVector ? Core.VecOpCost : Core.CostFpAdd;
  case OpClass::FpMul:
    return IsVector ? Core.VecOpCost : Core.CostFpMul;
  case OpClass::FpFma:
    return IsVector ? Core.VecOpCost : Core.CostFpFma;
  case OpClass::FpDiv:
    return Core.CostFpDiv * (IsVector ? Op.Lanes / 2.0 : 1.0);
  case OpClass::Load:
    if (IsVector)
      return Op.StrideBytes != 0 ? Core.VecStridedLaneCost * Op.Lanes
                                 : Core.VecMemCost;
    return Core.CostLoad;
  case OpClass::Store:
    if (IsVector)
      return Op.StrideBytes != 0 ? Core.VecStridedLaneCost * Op.Lanes
                                 : Core.VecMemCost;
    return Core.CostStore;
  case OpClass::Branch:
    return Core.CostBranch;
  case OpClass::Call:
  case OpClass::Ret:
    return Core.CostCall;
  case OpClass::Other:
    return IsVector ? Core.VecOpCost : Core.CostOther;
  }
  return Core.CostOther;
}

void CoreModel::onRetireBatch(const vm::RetiredOp *Ops, size_t Count,
                              const ir::Instruction *&RetireCursor) {
  for (size_t I = 0; I != Count; ++I) {
    RetireCursor = Ops[I].Inst;
    retireOne(Ops[I]);
  }
}

void CoreModel::retireOne(const vm::RetiredOp &Op) {
  EventDeltas D;
  D.Mode = CurrentMode;
  double Cycles = costFor(Op);
  Stats.IssueCycles += Cycles;

  // Memory: walk the cache. Loads stall for the added latency (in-order
  // cores in full, OoO cores overlap it across Mlp outstanding misses);
  // stores retire through the store buffer and only pay issue cost plus
  // the DRAM bandwidth floor below.
  if (Op.Class == OpClass::Load || Op.Class == OpClass::Store) {
    uint64_t L1MissBefore = Cache.stats().L1Misses;
    uint64_t L2MissBefore = Cache.stats().L2Misses;
    MemLevel Deepest = MemLevel::L1;
    if (Op.Lanes > 1 && Op.StrideBytes != 0) {
      uint32_t ElemBytes = Op.Bytes / Op.Lanes;
      for (unsigned Ln = 0; Ln != Op.Lanes; ++Ln) {
        MemLevel Lv = Cache.access(
            Op.Addr + static_cast<uint64_t>(Op.StrideBytes) * Ln, ElemBytes);
        if (static_cast<int>(Lv) > static_cast<int>(Deepest))
          Deepest = Lv;
      }
    } else {
      Deepest = Cache.access(Op.Addr, Op.Bytes ? Op.Bytes : 1);
    }
    if (Op.Class == OpClass::Load) {
      double Stall = Cache.latencyFor(Deepest) / std::max(1.0, Core.Mlp);
      Cycles += Stall;
      Stats.MemStallCycles += Stall;
    }
    D.L1DMiss = Cache.stats().L1Misses - L1MissBefore;
    D.L2Miss = Cache.stats().L2Misses - L2MissBefore;
  }

  if (Op.Class == OpClass::Branch) {
    if (!predictBranch(Op)) {
      Cycles += Core.BranchMissPenalty;
      Stats.BadSpecCycles += Core.BranchMissPenalty;
      D.BranchMispredict = 1;
      ++Stats.BranchMispredicts;
    }
  }

  Stats.Cycles += Cycles;

  // DRAM bandwidth floor: cycles can never run ahead of the sustained
  // bandwidth needed for the traffic generated so far.
  double BwFloor =
      static_cast<double>(Cache.stats().DramBytes) / Cache.config().DramBytesPerCycle;
  if (Stats.Cycles < BwFloor) {
    double CatchUp = BwFloor - Stats.Cycles;
    Stats.Cycles = BwFloor;
    Stats.BandwidthCycles += CatchUp;
    Cycles += CatchUp;
  }

  double InstretDelta = Core.InstretFactor;
  Stats.Instret += InstretDelta;
  ++Stats.RetiredIrOps;

  // FLOP accounting for the counter-based (Advisor-like) estimator.
  double Flops = 0;
  switch (Op.Class) {
  case OpClass::FpAdd:
  case OpClass::FpMul:
  case OpClass::FpDiv:
    Flops = Op.Lanes;
    break;
  case OpClass::FpFma:
    Flops = 2.0 * Op.Lanes;
    break;
  default:
    break;
  }
  Stats.FpOpsActual += Flops;
  Stats.FpOpsSpec += Flops * Core.FpSpecFactor;

  if (EventSink) {
    D.Cycles = Cycles;
    D.Instret = InstretDelta;
    D.FpOpsSpec = Flops * Core.FpSpecFactor;
    EventSink(D);
  }
}
