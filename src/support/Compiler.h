//===- Compiler.h - Compiler portability macros ---------------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability and diagnostics helpers shared by every library.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_SUPPORT_COMPILER_H
#define MPERF_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace mperf {

/// Marks a point in code that must never be reached. Prints \p Msg and
/// aborts; unlike assert it fires in release builds too, because reaching
/// it means the in-memory IR or simulator state is corrupt.
[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace mperf

#define MPERF_UNREACHABLE(msg)                                                 \
  ::mperf::unreachableInternal(msg, __FILE__, __LINE__)

#endif // MPERF_SUPPORT_COMPILER_H
