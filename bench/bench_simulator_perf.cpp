//===- bench_simulator_perf.cpp - Substrate microbenchmarks ---------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Timings of the simulation substrate itself: raw interpreter
// throughput, the cost of attaching the timing model, and the full
// PMU+perf stack. Useful when sizing workloads. Uses the in-repo
// BenchUtil.h harness like every other bench.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "hw/CoreModel.h"
#include "hw/Platform.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/Table.h"
#include "vm/Interpreter.h"

#include <cstdlib>

using namespace bench;
using namespace mperf;

namespace {

const char *HotLoopText = R"(module m
global @OUT 8
func @main(i64 %n) -> void {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i.next, loop ]
  %a = mul i64 %i, 7
  %b = xor i64 %a, 12345
  %c = and i64 %b, 1023
  store i64 %c, @OUT
  %i.next = add i64 %i, 1
  %cc = icmp slt i64 %i.next, %n
  cond_br %cc, loop, exit
exit:
  ret
}
)";

/// Ops retired per trip of the hot loop above.
constexpr double HotLoopOpsPerIter = 8.0;

/// A pure counted-loop latch: the loop body IS the back edge
/// (add + icmp + cond_br), the shape the AddICmpBr fused micro-op
/// collapses into one dispatch. Retires 3 ops per trip.
const char *LatchLoopText = R"(module m
func @main(i64 %n) -> void {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i.next, loop ]
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  ret
}
)";

constexpr double LatchLoopOpsPerIter = 3.0;

/// Loop trip count every benchLoop run uses; the JSON ops/s metrics
/// below derive from the same constant.
constexpr uint64_t LoopTripCount = 100000;

void addRow(TextTable &T, const std::string &Name, const BenchTiming &Timing,
            const std::string &Throughput) {
  T.addRow({Name, withCommas(Timing.Iterations),
            formatSecondsPerIter(Timing.SecondsPerIter), Throughput});
}

/// Times \p LoopText on a fresh instance running \p Engine, optionally
/// with the platform's core timing model attached as a trace consumer.
BenchTiming benchLoop(TextTable &T, const char *LoopText, double OpsPerIter,
                      const std::string &Name, vm::EngineKind Engine,
                      bool AttachCoreModel,
                      hw::TimingTier Tier = hw::TimingTier::Batched) {
  auto MOr = ir::parseModule(LoopText);
  if (!MOr) {
    print("FATAL: bench loop does not parse: " + MOr.errorMessage() + "\n");
    std::exit(1);
  }
  vm::Interpreter Vm(**MOr);
  Vm.setEngine(Engine);
  hw::Platform P = hw::spacemitX60();
  hw::CoreModel Core(P.Core, P.Cache);
  Core.setTimingTier(Tier);
  if (AttachCoreModel)
    Vm.addConsumer(&Core);
  const uint64_t N = LoopTripCount;
  BenchTiming Timing = measure([&] {
    auto R = Vm.run("main", {vm::RtValue::ofInt(N)});
    doNotOptimize(R.hasValue());
  });
  double OpsPerSec =
      static_cast<double>(N) * OpsPerIter / Timing.SecondsPerIter;
  addRow(T, Name, Timing, formatRate(OpsPerSec, "ops"));
  return Timing;
}

BenchTiming benchHotLoop(TextTable &T, const std::string &Name,
                         vm::EngineKind Engine, bool AttachCoreModel,
                         hw::TimingTier Tier = hw::TimingTier::Batched) {
  return benchLoop(T, HotLoopText, HotLoopOpsPerIter, Name, Engine,
                   AttachCoreModel, Tier);
}

void benchFullProfilingSession(TextTable &T) {
  workloads::SqliteLikeConfig C;
  C.NumPages = 8;
  C.CellsPerPage = 8;
  C.NumQueries = 4;
  BenchTiming Timing = measure([&] {
    auto W = workloads::buildSqliteLike(C);
    miniperf::Session S(hw::spacemitX60());
    auto R = S.profile(*W.M, "main", {vm::RtValue::ofInt(4)});
    doNotOptimize(R.hasValue());
  });
  addRow(T, "full profiling session", Timing, "-");
}

void benchVectorizerOnMatmul(TextTable &T) {
  BenchTiming Timing = measure([&] {
    auto W = workloads::buildMatmul({64, 16, 1});
    transform::PassManager PM;
    PM.addPass(std::make_unique<transform::LoopVectorizer>(
        transform::TargetInfo::rv64gcv(256)));
    Error E = PM.run(*W.M);
    doNotOptimize(E.isError());
  });
  addRow(T, "vectorizer on matmul", Timing, "-");
}

void benchModuleParse(TextTable &T) {
  auto W = workloads::buildSqliteLike({4, 4, 4, 12, 1});
  std::string Text = ir::printModule(*W.M);
  BenchTiming Timing = measure([&] {
    auto MOr = ir::parseModule(Text);
    doNotOptimize(MOr.hasValue());
  });
  double BytesPerSec =
      static_cast<double>(Text.size()) / Timing.SecondsPerIter;
  addRow(T, "module parse", Timing, formatRate(BytesPerSec, "B"));
}

} // namespace

int main() {
  print("Substrate microbenchmarks: what the simulator itself costs\n\n");

  TextTable T;
  T.addHeader({"Benchmark", "iters", "time/iter", "throughput"});

  BenchTiming Raw =
      benchHotLoop(T, "interpreter, raw", vm::EngineKind::MicroOp, false);
  BenchTiming RefRaw = benchHotLoop(T, "interpreter, raw (reference)",
                                    vm::EngineKind::Reference, false);
  // "interpreter + core model" rides the default batched timing tier
  // (superblock flushes folded column-wise); the scalar-tier row keeps
  // the op-at-a-time consumption path measured for comparison.
  BenchTiming Timed = benchHotLoop(T, "interpreter + core model",
                                   vm::EngineKind::MicroOp, true);
  BenchTiming ScalarTimed =
      benchHotLoop(T, "interpreter + core model (scalar tier)",
                   vm::EngineKind::MicroOp, true, hw::TimingTier::Scalar);
  BenchTiming RefTimed =
      benchHotLoop(T, "interpreter + core model (reference)",
                   vm::EngineKind::Reference, true);
  // The pure latch loop: the whole body fuses into one AddICmpBr
  // micro-op, so this row is the upper bound of what latch fusion buys.
  BenchTiming Latch = benchLoop(T, LatchLoopText, LatchLoopOpsPerIter,
                                "counted-loop latch (fused)",
                                vm::EngineKind::MicroOp, false);
  BenchTiming RefLatch = benchLoop(T, LatchLoopText, LatchLoopOpsPerIter,
                                   "counted-loop latch (reference)",
                                   vm::EngineKind::Reference, false);
  benchFullProfilingSession(T);
  benchVectorizerOnMatmul(T);
  benchModuleParse(T);

  print(T.render());
  if (Raw.SecondsPerIter > 0)
    print("\nAttaching the core model costs " +
          fixed(Timed.SecondsPerIter / Raw.SecondsPerIter, 2) +
          "x over the raw interpreter on the hot loop.\n");
  if (Raw.SecondsPerIter > 0)
    print("Micro-op engine speedup over the reference switch loop: " +
          fixed(RefRaw.SecondsPerIter / Raw.SecondsPerIter, 2) + "x raw, " +
          fixed(RefTimed.SecondsPerIter / Timed.SecondsPerIter, 2) +
          "x with the core model.\n");
  if (Latch.SecondsPerIter > 0)
    print("Fused counted-loop latch vs reference on the pure latch "
          "loop: " +
          fixed(RefLatch.SecondsPerIter / Latch.SecondsPerIter, 2) + "x.\n");

  // Everything this bench measures is host wall-clock, so the whole
  // report is advisory: the perf gate reads it for trends but the
  // committed baseline carries no gated metrics.
  BenchReport Json("simulator_perf");
  const double HotLoopOps = LoopTripCount * HotLoopOpsPerIter;
  Json.hostMetric("raw_ops_per_sec", HotLoopOps / Raw.SecondsPerIter);
  Json.hostMetric("reference_raw_ops_per_sec",
                  HotLoopOps / RefRaw.SecondsPerIter);
  Json.hostMetric("timed_ops_per_sec", HotLoopOps / Timed.SecondsPerIter);
  Json.hostMetric("scalar_tier_timed_ops_per_sec",
                  HotLoopOps / ScalarTimed.SecondsPerIter);
  Json.hostMetric("reference_timed_ops_per_sec",
                  HotLoopOps / RefTimed.SecondsPerIter);
  Json.hostMetric("core_model_slowdown",
                  Timed.SecondsPerIter / Raw.SecondsPerIter);
  Json.hostMetric("scalar_tier_core_model_slowdown",
                  ScalarTimed.SecondsPerIter / Raw.SecondsPerIter);
  Json.hostMetric("batched_tier_speedup",
                  ScalarTimed.SecondsPerIter / Timed.SecondsPerIter);
  Json.hostMetric("microop_speedup_raw",
                  RefRaw.SecondsPerIter / Raw.SecondsPerIter);
  Json.hostMetric("microop_speedup_timed",
                  RefTimed.SecondsPerIter / Timed.SecondsPerIter);
  const double LatchLoopOps = LoopTripCount * LatchLoopOpsPerIter;
  Json.hostMetric("latch_ops_per_sec", LatchLoopOps / Latch.SecondsPerIter);
  Json.hostMetric("reference_latch_ops_per_sec",
                  LatchLoopOps / RefLatch.SecondsPerIter);
  Json.hostMetric("latch_fusion_speedup",
                  RefLatch.SecondsPerIter / Latch.SecondsPerIter);
  Json.addTable("substrate", T);
  Json.write();
  return 0;
}
