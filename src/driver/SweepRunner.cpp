//===- SweepRunner.cpp - Concurrent scenario execution -------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Concurrency audit (what makes one-Session-per-worker safe): every
// scenario owns its own mutable stack — vm::Instance memory, CoreModel
// (branch predictor, cache sim), Pmu counters, SbiPmu op log and
// PerfEventSubsystem fd table. hw::Platform is copied by value into
// each Scenario. What *is* shared across workers is immutable by
// construction: the vm::Program artifacts handed out by the
// ProgramCache (verified module + eagerly lowered micro-ops; nothing
// in them mutates after compile — the cache is why the sweep no longer
// rebuilds one workload per scenario), plus function-local `static
// const` lookup tables (ir/Parser.cpp) whose initialization the C++
// runtime serializes. No global mutable state exists in hw:: or vm::
// (verified by review; guarded continuously by the sanitizer CI leg
// running this runner's tests, including the shared-Program
// multi-thread suite in tests/program_test.cpp).
//
//===----------------------------------------------------------------------===//

#include "driver/SweepRunner.h"

#include "analysis/StaticCost.h"
#include "driver/ProgramCache.h"
#include "miniperf/Analysis.h"
#include "miniperf/ClusterSession.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

using namespace mperf;
using namespace mperf::driver;

unsigned SweepRunner::effectiveJobs(size_t NumScenarios) const {
  unsigned Jobs = Opts.Jobs;
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  if (NumScenarios > 0 && Jobs > NumScenarios)
    Jobs = static_cast<unsigned>(NumScenarios);
  return Jobs < 1 ? 1 : Jobs;
}

ScenarioResult SweepRunner::runScenario(const Scenario &S,
                                        ProgramCache *Cache) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();

  ScenarioResult R;
  R.Name = S.Name;
  R.PlatformName = S.isCluster() ? S.Cluster.Name : S.Platform.CoreName;
  R.WorkloadName = S.Workload.Name;
  R.Tags = S.Tags;

  trace::ScopedSpan ScenarioSpan("scenario", S.Name);

  auto Finish = [&R, Start] {
    R.HostSeconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
  };

  // Build phase: fetch the shared compiled workload (or compile
  // privately with the cache off). Timed separately so the report can
  // state how build-bound the sweep is.
  std::shared_ptr<const CompiledWorkload> Workload;
  {
    trace::ScopedSpan Span("scenario.build", S.Name);
    const Clock::time_point BuildStart = Clock::now();
    auto WOr = Cache ? Cache->get(S, &R.SharedBuild) : ProgramCache::compile(S);
    if (WOr)
      Workload = std::move(*WOr);
    else
      R.Error = WOr.errorMessage();
    R.BuildHostSeconds =
        std::chrono::duration<double>(Clock::now() - BuildStart).count();
  }
  if (!Workload) {
    R.Failed = true;
    Finish();
    return R;
  }

  const Clock::time_point ExecStart = Clock::now();
  auto FinishExec = [&R, ExecStart] {
    R.ExecHostSeconds =
        std::chrono::duration<double>(Clock::now() - ExecStart).count();
  };

  // Cluster cells profile through a ClusterSession (N instances of the
  // shared Program under the deterministic interleave); plain cells
  // take the single-hart Session path, unchanged.
  Expected<miniperf::Profile> POr = [&]() -> Expected<miniperf::Profile> {
    trace::ScopedSpan Span("scenario.exec", S.Name);
    if (S.isCluster()) {
      miniperf::ClusterSession Sess(S.Cluster, S.Knobs.Session);
      if (S.Knobs.InterleaveQuantum)
        Sess.setInterleaveQuantum(S.Knobs.InterleaveQuantum);
      if (Workload->Setup)
        Sess.setSetupHook(Workload->Setup);
      return Sess.profile(Workload->Prog, Workload->Entry, Workload->Args);
    }
    miniperf::Session Sess(S.Platform, S.Knobs.Session);
    if (Workload->Setup)
      Sess.setSetupHook(Workload->Setup);
    return Sess.profile(Workload->Prog, Workload->Entry, Workload->Args);
  }();
  if (!POr) {
    R.Failed = true;
    R.Error = POr.errorMessage();
    FinishExec();
    Finish();
    return R;
  }

  R.Profile = std::move(*POr);
  // Stamp the artifact with its scenario identity so analyses (and
  // anyone holding just the Profile) can tell where it came from.
  R.Profile.WorkloadName = S.Workload.Name;
  R.Profile.Tags = S.Tags;
  R.NumSamples = R.Profile.Samples.size();

  // v6: every scenario carries the static-cost prediction next to what
  // the run measured — or an honest "unknown" with its reason. Pure
  // function of the (program, platform) pair, so --jobs bit-identity
  // holds for free.
  {
    trace::ScopedSpan Span("scenario.static_cost", S.Name);
    if (!R.Profile.Program) {
      R.StaticCost.UnknownReason = "profile carries no program";
    } else if (R.Profile.NumCores > 1) {
      R.StaticCost.UnknownReason =
          "multi-core cluster scenario (static model is single-hart)";
    } else {
      std::vector<int64_t> Args;
      Args.reserve(R.Profile.EntryArgs.size());
      for (const vm::RtValue &V : R.Profile.EntryArgs)
        Args.push_back(static_cast<int64_t>(V.I[0]));
      analysis::StaticCostResult SC = analysis::computeStaticCost(
          *R.Profile.Program, R.Profile.Platform, R.Profile.EntryName, Args);
      R.StaticCost.Known = SC.Known;
      R.StaticCost.UnknownReason = SC.UnknownReason;
      if (SC.Known) {
        R.StaticCost.PredictedCycles = SC.Cycles;
        R.StaticCost.PredictedInstructions = SC.Instret;
        // The static model predicts the sampling-free run; firmware
        // cycles (PMU traps) are measurement overhead on top of it.
        const double MeasCycles = static_cast<double>(R.Profile.Core.Cycles) -
                                  static_cast<double>(
                                      R.Profile.Core.FirmwareCycles);
        const double MeasInstret =
            static_cast<double>(R.Profile.Core.Instret);
        if (MeasCycles > 0)
          R.StaticCost.CyclesErrorPct =
              100.0 * (SC.Cycles - MeasCycles) / MeasCycles;
        if (MeasInstret > 0)
          R.StaticCost.InstructionsErrorPct =
              100.0 * (SC.Instret - MeasInstret) / MeasInstret;
      }
    }
  }

  // Run the requested analyses while the sample buffers are still
  // attached; a failing analysis is recorded, not fatal, mirroring how
  // scenario failures never abort the sweep.
  trace::ScopedSpan AnalysesSpan("scenario.analyses", S.Name);
  const miniperf::AnalysisRegistry &Registry =
      miniperf::AnalysisRegistry::builtins();
  for (const std::string &Name : S.Knobs.Analyses) {
    AnalysisRecord Rec;
    Rec.Name = Name;
    const miniperf::Analysis *A = Registry.find(Name);
    if (!A) {
      Rec.Failed = true;
      Rec.Error = "unknown analysis '" + Name + "'";
    } else if (Expected<miniperf::AnalysisResult> AR = A->run(R.Profile)) {
      Rec.Schema = AR->Schema;
      Rec.Json = miniperf::serializeJson(AR->Json);
      Rec.Text = AR->Table.render();
    } else {
      Rec.Failed = true;
      Rec.Error = AR.errorMessage();
    }
    R.Analyses.push_back(std::move(Rec));
  }

  if (!Opts.KeepSamples) {
    R.Profile.Samples.clear();
    R.Profile.Samples.shrink_to_fit();
    for (miniperf::Profile &C : R.Profile.CoreProfiles) {
      C.Samples.clear();
      C.Samples.shrink_to_fit();
    }
  }
  FinishExec();
  Finish();
  return R;
}

SweepReport SweepRunner::run(const std::vector<Scenario> &Scenarios) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();

  // Self-metrics are process-global (layers as deep as Program::compile
  // feed them); the per-sweep numbers reported under "self_metrics" are
  // the delta between these two snapshots.
  metrics::Registry &Reg = metrics::Registry::global();
  const metrics::Snapshot MetricsBegin = Reg.snapshot();
  trace::ScopedSpan SweepSpan("sweep");

  SweepReport Report;
  Report.Jobs = effectiveJobs(Scenarios.size());
  Report.Results.resize(Scenarios.size());
  Report.CacheEnabled = Opts.ShareWorkloadBuilds;

  // One build cache per sweep: first scenario of a key compiles, the
  // rest share. Null when disabled (the bit-identity comparison knob).
  ProgramCache Cache;
  ProgramCache *CachePtr = Opts.ShareWorkloadBuilds ? &Cache : nullptr;

  std::atomic<size_t> Next{0};
  std::mutex ProgressLock;
  size_t Done = 0; // guarded by ProgressLock, so callbacks see it grow

  // Worker utilization: each worker accumulates the wall time it spent
  // actually running scenarios; the gauge below folds it against
  // jobs x sweep wall time. The atomic is touched once per scenario,
  // not per op.
  std::atomic<uint64_t> BusyNs{0};
  metrics::Counter &BusyCounter = Reg.counter("sweep.worker_busy_host_ns");
  metrics::Counter &ScenarioCounter = Reg.counter("sweep.scenarios");

  auto Worker = [&] {
    for (;;) {
      const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Scenarios.size())
        return;
      // Live queue depth for the trace timeline (no-op untraced).
      trace::counter("sweep.pending_scenarios",
                     static_cast<double>(Scenarios.size() - I - 1));
      // Result slots are pre-sized and disjoint per index, so workers
      // write without locking; OnResult is the only shared call.
      const uint64_t T0 = trace::Tracer::nowNs();
      Report.Results[I] = runScenario(Scenarios[I], CachePtr);
      const uint64_t Spent = trace::Tracer::nowNs() - T0;
      BusyNs.fetch_add(Spent, std::memory_order_relaxed);
      BusyCounter.add(Spent);
      ScenarioCounter.add();
      if (Opts.OnResult) {
        std::lock_guard<std::mutex> Guard(ProgressLock);
        Opts.OnResult(Report.Results[I], ++Done, Scenarios.size());
      }
    }
  };

  if (Report.Jobs <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Report.Jobs);
    for (unsigned T = 0; T != Report.Jobs; ++T)
      Pool.emplace_back([&Worker, T] {
        trace::Tracer::setThreadName("sweep-worker-" + std::to_string(T));
        Worker();
      });
    for (std::thread &T : Pool)
      T.join();
  }

  if (CachePtr) {
    ProgramCache::CacheStats CS = Cache.stats();
    Report.CacheHits = CS.Hits;
    Report.WorkloadBuilds = CS.Misses;
  } else {
    Report.CacheHits = 0;
    Report.WorkloadBuilds = Scenarios.size();
  }

  Report.HostSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  Reg.counter("sweep.failures").add(Report.numFailures());
  Reg.gauge("sweep.jobs").set(Report.Jobs);
  const double WallNs = Report.HostSeconds * 1e9;
  Reg.gauge("sweep.worker_utilization")
      .set(WallNs > 0 ? static_cast<double>(
                            BusyNs.load(std::memory_order_relaxed)) /
                            (WallNs * Report.Jobs)
                      : 0);
  // Snapshot after the gauges so they appear in the delta; the pool
  // has joined, so no recording thread races the read.
  Report.SelfMetricsJson =
      metrics::Snapshot::delta(MetricsBegin, Reg.snapshot()).toJson();
  return Report;
}
