// Calibration scratch tool: prints the headline shapes for each platform.
#include "miniperf/Session.h"
#include "miniperf/Hotspots.h"
#include "roofline/MachineModel.h"
#include "roofline/TwoPhase.h"
#include "roofline/PmuEstimator.h"
#include "transform/LoopVectorizer.h"
#include "transform/RooflineInstrumenter.h"
#include "workloads/Matmul.h"
#include "workloads/SqliteLike.h"
#include <cstdio>

using namespace mperf;

int main() {
  // --- sqlite IPC on X60 and x86.
  for (auto P : {hw::spacemitX60(), hw::intelI5_1135G7()}) {
    workloads::SqliteLikeConfig C;
    auto W = workloads::buildSqliteLike(C);
    miniperf::SessionOptions Opts;
    Opts.SamplePeriod = 20000;
    miniperf::Session S(P, Opts);
    auto R = S.profile(*W.M, "main", {vm::RtValue::ofInt(C.NumQueries)});
    if (!R) { std::printf("ERR %s\n", R.errorMessage().c_str()); continue; }
    std::printf("%-22s cycles=%.3e instr=%.3e IPC=%.3f samples=%zu workaround=%d irops=%llu\n",
                P.CoreName.c_str(), (double)R->Cycles, (double)R->Instructions,
                R->Ipc, R->Samples.size(), (int)R->UsedWorkaround,
                (unsigned long long)R->Vm.RetiredOps);
    auto Rows = miniperf::computeHotspots(*R);
    for (size_t i = 0; i < Rows.size() && i < 6; ++i)
      std::printf("   %-28s %6.2f%%  instr=%llu ipc=%.2f\n", Rows[i].Function.c_str(),
                  Rows[i].TotalShare*100, (unsigned long long)Rows[i].Instructions, Rows[i].Ipc);
  }

  // --- matmul roofline on x86 and X60.
  for (auto P : {hw::intelI5_1135G7(), hw::spacemitX60()}) {
    workloads::MatmulConfig MC{96, 32, 1};
    auto W = workloads::buildMatmul(MC);
    transform::PassManager PM;
    PM.addPass(std::make_unique<transform::LoopVectorizer>(P.Target));
    auto IP = std::make_unique<transform::RooflineInstrumenter>();
    auto *Instr = IP.get();
    PM.addPass(std::move(IP));
    if (Error E = PM.run(*W.M)) { std::printf("PASS ERR %s\n", E.message().c_str()); continue; }
    roofline::TwoPhaseDriver Driver(P);
    Driver.setSetupHook([&W](vm::Interpreter &Vm) {
      W.initialize(Vm);
      workloads::bindClock(Vm, [] { return 0.0; });
    });
    auto ROr = Driver.analyze(*W.M, Instr->loops(), "main");
    if (!ROr) { std::printf("TP ERR %s\n", ROr.errorMessage().c_str()); continue; }
    for (auto &L : ROr->Loops)
      std::printf("%-22s loop=%s GFLOPs=%.2f GB/s=%.2f AI=%.3f overhead=%.2fx\n",
                  P.CoreName.c_str(), L.Info.Loc.str().c_str(), L.GFlops,
                  L.GBytesPerSec, L.ArithmeticIntensity, L.OverheadRatio);
    auto C = roofline::measureCeilings(P);
    if (C)
      std::printf("   roofs: mem=%.2f GB/s (%.2f B/cyc) compute=%.1f GFLOP/s measured=%.1f\n",
                  C->MemBandwidthGBs, C->BytesPerCycle, C->PeakGFlops, C->MeasuredGFlops);
  }
  return 0;
}
