//===- Analysis.h - Pluggable analyses over a Profile ----------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's workflow is a pipeline: one profiling artifact, then
/// several analyses dissecting it — hotspot tables, flame graphs,
/// top-down buckets, roofline points. This header makes that pipeline an
/// API: an Analysis declares its name and the profile features it needs,
/// and turns a Profile into an AnalysisResult carrying both a TextTable
/// (for terminals) and a versioned JSON document (for reports and
/// tooling). The AnalysisRegistry exposes the built-ins — hotspots,
/// flamegraph, topdown, roofline, opcounts — and accepts user plugins,
/// so a new analysis is a ~100-line subclass instead of a subsystem;
/// the sweep driver embeds any registered analysis per scenario.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_MINIPERF_ANALYSIS_H
#define MPERF_MINIPERF_ANALYSIS_H

#include "miniperf/Profile.h"
#include "support/JSON.h"
#include "support/Table.h"

#include <memory>
#include <string>
#include <vector>

namespace mperf {
namespace miniperf {

/// What one analysis produced from one Profile.
struct AnalysisResult {
  /// The producing analysis ("hotspots", "topdown", ...).
  std::string Analysis;
  /// Versioned document schema, "miniperf-analysis/<name>/v<N>"; also
  /// present as the "schema" member of Json.
  std::string Schema;
  /// Human-readable rendering.
  TextTable Table;
  /// Machine-readable document (object; includes "schema").
  JsonValue Json = JsonValue::makeObject();
};

/// One registrable analysis over a Profile.
class Analysis {
public:
  virtual ~Analysis() = default;

  /// Stable registry key ("hotspots", "flamegraph", ...).
  virtual std::string name() const = 0;

  /// One line for --list output and docs.
  virtual std::string description() const = 0;

  /// Profile features this analysis requires: counter names
  /// ("cycles", "instructions") resolved against Profile::hasCounter,
  /// plus the pseudo-event "samples" (a non-empty sample buffer).
  /// An empty list means any Profile will do.
  virtual std::vector<std::string> requiredEvents() const = 0;

  /// Dissects \p P. Implementations may assume checkRequirements
  /// passed; run() re-checks and errors out otherwise.
  virtual Expected<AnalysisResult> run(const Profile &P) const = 0;

  /// Verifies \p P provides every required event; the error names the
  /// first missing one.
  Error checkRequirements(const Profile &P) const;

protected:
  /// Starts a result: fills Analysis/Schema and seeds Json with the
  /// "schema" member so every document is versioned the same way.
  AnalysisResult makeResult(unsigned Version) const;
};

/// A named set of analyses. The built-ins live in builtins(); tools
/// resolve user --analyses specs against it via select().
class AnalysisRegistry {
public:
  AnalysisRegistry() = default;
  AnalysisRegistry(AnalysisRegistry &&) = default;
  AnalysisRegistry &operator=(AnalysisRegistry &&) = default;

  /// The registry of built-in analyses: hotspots, flamegraph, topdown,
  /// roofline, opcounts. Constructed once, immutable, thread-safe to
  /// read from concurrent sweep workers.
  static const AnalysisRegistry &builtins();

  /// Registers \p A; replaces an existing analysis of the same name.
  void add(std::unique_ptr<Analysis> A);

  /// Finds by name; nullptr on miss.
  const Analysis *find(std::string_view Name) const;

  /// Registration order, the order reports list analyses in.
  std::vector<const Analysis *> all() const;

  /// Resolves a comma-separated spec ("all", "hotspots,topdown")
  /// against the registry. Errors on an unknown token.
  Expected<std::vector<const Analysis *>> select(const std::string &Spec) const;

private:
  std::vector<std::unique_ptr<Analysis>> Entries;
};

/// Serializes \p V as compact JSON (JsonWriter formatting rules), the
/// form reports embed and tests compare bit-for-bit.
std::string serializeJson(const JsonValue &V);

} // namespace miniperf
} // namespace mperf

#endif // MPERF_MINIPERF_ANALYSIS_H
