//===- FlameGraph.cpp - Flame graph construction and rendering ----------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "miniperf/FlameGraph.h"
#include "support/Format.h"

#include <algorithm>
#include <functional>

using namespace mperf;
using namespace mperf::miniperf;
using namespace mperf::kernel;

static uint64_t groupValue(const PerfSample &S, int Fd) {
  for (const auto &[SampleFd, Value] : S.GroupValues)
    if (SampleFd == Fd)
      return Value;
  return 0;
}

size_t FlameGraph::childOf(size_t Parent, const std::string &Name) {
  auto It = Nodes[Parent].Children.find(Name);
  if (It != Nodes[Parent].Children.end())
    return It->second;
  Nodes.push_back(Node{Name, 0, 0, {}});
  size_t Idx = Nodes.size() - 1;
  Nodes[Parent].Children.emplace(Name, Idx);
  return Idx;
}

FlameGraph FlameGraph::fromSamples(const std::vector<PerfSample> &Samples,
                                   int MetricFd, std::string MetricName) {
  FlameGraph FG;
  FG.Metric = std::move(MetricName);
  FG.Nodes.push_back(Node{"root", 0, 0, {}});

  uint64_t Prev = 0;
  bool HavePrev = false;
  for (const PerfSample &S : Samples) {
    uint64_t Weight = 1;
    if (MetricFd >= 0) {
      uint64_t Cur = groupValue(S, MetricFd);
      Weight = HavePrev && Cur >= Prev ? Cur - Prev : 0;
      Prev = Cur;
      HavePrev = true;
      if (Weight == 0)
        continue; // first sample anchors the deltas
    }
    if (S.Callchain.empty())
      continue;
    size_t Cur = 0;
    FG.Nodes[0].TotalWeight += Weight;
    for (const std::string &Frame : S.Callchain) {
      Cur = FG.childOf(Cur, Frame);
      FG.Nodes[Cur].TotalWeight += Weight;
    }
    FG.Nodes[Cur].SelfWeight += Weight;
    FG.Total += Weight;
  }
  return FG;
}

std::string FlameGraph::folded() const {
  std::vector<std::string> Lines;
  // DFS carrying the stack string.
  std::function<void(size_t, const std::string &)> Walk =
      [&](size_t Idx, const std::string &Prefix) {
        const Node &N = Nodes[Idx];
        std::string Path =
            Prefix.empty() ? N.Name : Prefix + ";" + N.Name;
        if (N.SelfWeight > 0)
          Lines.push_back(Path + " " + std::to_string(N.SelfWeight));
        for (const auto &[Name, Child] : N.Children)
          Walk(Child, Path);
      };
  for (const auto &[Name, Child] : Nodes[0].Children)
    Walk(Child, "");
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out.push_back('\n');
  }
  return Out;
}

double FlameGraph::leafShare(const std::string &Fn) const {
  if (Total == 0)
    return 0;
  uint64_t Self = 0;
  for (const Node &N : Nodes)
    if (N.Name == Fn)
      Self += N.SelfWeight;
  return static_cast<double>(Self) / static_cast<double>(Total);
}

std::string FlameGraph::renderAscii(unsigned Columns) const {
  if (Total == 0)
    return "(no samples)\n";
  std::string Out;
  Out += "flame graph (" + Metric + ", total " + withCommas(Total) + ")\n";

  struct Row {
    std::string Text;
  };
  std::vector<std::string> Rows;

  std::function<void(size_t, unsigned, unsigned, unsigned)> Place =
      [&](size_t Idx, unsigned Depth, unsigned Col, unsigned Width) {
        if (Width == 0)
          return;
        while (Rows.size() <= Depth)
          Rows.push_back(std::string(Columns, ' '));
        const Node &N = Nodes[Idx];
        std::string Label = N.Name;
        if (Label.size() > Width)
          Label = Label.substr(0, Width);
        std::string Cell(Width, '-');
        Cell.replace(0, Label.size(), Label);
        if (Width >= 1)
          Cell[Width - 1] = Width > Label.size() ? '|' : Cell[Width - 1];
        Rows[Depth].replace(Col, Width, Cell);

        // Children get proportional sub-spans, widest first.
        std::vector<std::pair<uint64_t, size_t>> Kids;
        for (const auto &[Name, Child] : N.Children)
          Kids.push_back({Nodes[Child].TotalWeight, Child});
        std::sort(Kids.rbegin(), Kids.rend());
        unsigned Cursor = Col;
        for (const auto &[W, Child] : Kids) {
          unsigned ChildWidth = static_cast<unsigned>(
              static_cast<double>(W) / N.TotalWeight * Width + 0.5);
          ChildWidth = std::min(ChildWidth, Col + Width - Cursor);
          Place(Child, Depth + 1, Cursor, ChildWidth);
          Cursor += ChildWidth;
        }
      };

  // Roots share the full width.
  std::vector<std::pair<uint64_t, size_t>> Roots;
  for (const auto &[Name, Child] : Nodes[0].Children)
    Roots.push_back({Nodes[Child].TotalWeight, Child});
  std::sort(Roots.rbegin(), Roots.rend());
  unsigned Cursor = 0;
  for (const auto &[W, Child] : Roots) {
    unsigned Width = static_cast<unsigned>(
        static_cast<double>(W) / Total * Columns + 0.5);
    Width = std::min(Width, Columns - Cursor);
    Place(Child, 0, Cursor, Width);
    Cursor += Width;
  }

  // Deepest frames on top, like flamegraph.pl.
  for (auto It = Rows.rbegin(); It != Rows.rend(); ++It) {
    std::string Line = *It;
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Out += Line;
    Out.push_back('\n');
  }
  return Out;
}

std::string FlameGraph::renderSvg(unsigned Width) const {
  const unsigned RowHeight = 18;
  // Measure depth.
  unsigned MaxDepth = 0;
  std::function<void(size_t, unsigned)> Measure = [&](size_t Idx,
                                                      unsigned Depth) {
    MaxDepth = std::max(MaxDepth, Depth);
    for (const auto &[Name, Child] : Nodes[Idx].Children)
      Measure(Child, Depth + 1);
  };
  Measure(0, 0);
  unsigned Height = (MaxDepth + 2) * RowHeight + 30;

  std::string Svg;
  Svg += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(Width) + "\" height=\"" + std::to_string(Height) +
         "\" font-family=\"monospace\" font-size=\"11\">\n";
  Svg += "<text x=\"4\" y=\"14\">flame graph (" + Metric + ", total " +
         withCommas(Total) + ")</text>\n";

  // Deterministic warm palette based on the name hash.
  auto ColorFor = [](const std::string &Name) {
    uint64_t H = 1469598103934665603ull;
    for (char C : Name)
      H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
    unsigned R = 200 + H % 55;
    unsigned G = 80 + (H >> 8) % 120;
    unsigned B = 30 + (H >> 16) % 50;
    return "rgb(" + std::to_string(R) + "," + std::to_string(G) + "," +
           std::to_string(B) + ")";
  };

  std::function<void(size_t, unsigned, double, double)> Draw =
      [&](size_t Idx, unsigned Depth, double X, double W) {
        if (W < 0.5)
          return;
        const Node &N = Nodes[Idx];
        double Y = Height - (Depth + 1) * RowHeight - 10;
        if (Idx != 0) {
          Svg += "<rect x=\"" + fixed(X, 1) + "\" y=\"" + fixed(Y, 1) +
                 "\" width=\"" + fixed(W, 1) + "\" height=\"" +
                 std::to_string(RowHeight - 1) + "\" fill=\"" +
                 ColorFor(N.Name) + "\"><title>" + N.Name + " (" +
                 withCommas(N.TotalWeight) + ")</title></rect>\n";
          if (W > 40)
            Svg += "<text x=\"" + fixed(X + 2, 1) + "\" y=\"" +
                   fixed(Y + 12, 1) + "\">" + N.Name + "</text>\n";
        }
        std::vector<std::pair<uint64_t, size_t>> Kids;
        for (const auto &[Name, Child] : N.Children)
          Kids.push_back({Nodes[Child].TotalWeight, Child});
        std::sort(Kids.rbegin(), Kids.rend());
        double Cursor = X;
        for (const auto &[KidW, Child] : Kids) {
          double ChildWidth =
              static_cast<double>(KidW) / N.TotalWeight * W;
          Draw(Child, Idx == 0 ? 0 : Depth + 1, Cursor, ChildWidth);
          Cursor += ChildWidth;
        }
      };
  if (Total > 0)
    Draw(0, 0, 0.0, static_cast<double>(Width));
  Svg += "</svg>\n";
  return Svg;
}
