//===- Parser.cpp - Textual IR parsing ---------------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace mperf;
using namespace mperf::ir;

namespace {

/// Token kinds produced by the lexer.
enum class Tok : uint8_t {
  Ident,   // add, i64, entry, to, ...
  Local,   // %name
  Global,  // @name
  Integer, // -?[0-9]+
  Float,   // contains '.' or exponent
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Colon,
  Equals,
  Arrow, // ->
  End,
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text;
  unsigned Line = 0;
};

/// Single-pass lexer; copyable so the parser can pre-scan block labels.
class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  Token next() {
    skipWhitespaceAndComments();
    Token T;
    T.Line = Line;
    if (Pos >= Text.size()) {
      T.Kind = Tok::End;
      return T;
    }
    char C = Text[Pos];
    auto Single = [&](Tok Kind) {
      T.Kind = Kind;
      T.Text = std::string(1, C);
      ++Pos;
      return T;
    };
    switch (C) {
    case '(':
      return Single(Tok::LParen);
    case ')':
      return Single(Tok::RParen);
    case '{':
      return Single(Tok::LBrace);
    case '}':
      return Single(Tok::RBrace);
    case '[':
      return Single(Tok::LBracket);
    case ']':
      return Single(Tok::RBracket);
    case '<':
      return Single(Tok::Less);
    case '>':
      return Single(Tok::Greater);
    case ',':
      return Single(Tok::Comma);
    case ':':
      return Single(Tok::Colon);
    case '=':
      return Single(Tok::Equals);
    default:
      break;
    }
    if (C == '-' && Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
      Pos += 2;
      T.Kind = Tok::Arrow;
      T.Text = "->";
      return T;
    }
    if (C == '%' || C == '@') {
      ++Pos;
      T.Kind = C == '%' ? Tok::Local : Tok::Global;
      T.Text = takeName();
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-' || C == '+') {
      T.Text = takeNumber();
      bool IsFloat = T.Text.find('.') != std::string::npos ||
                     T.Text.find('e') != std::string::npos ||
                     T.Text.find("inf") != std::string::npos ||
                     T.Text.find("nan") != std::string::npos;
      T.Kind = IsFloat ? Tok::Float : Tok::Integer;
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      T.Kind = Tok::Ident;
      T.Text = takeName();
      return T;
    }
    T.Kind = Tok::End;
    T.Text = std::string(1, C);
    return T;
  }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
        continue;
      }
      if (C == ';') { // comment to end of line
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  }

  std::string takeName() {
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.') {
        ++Pos;
        continue;
      }
      break;
    }
    return std::string(Text.substr(Start, Pos - Start));
  }

  std::string takeNumber() {
    size_t Start = Pos;
    if (Text[Pos] == '-' || Text[Pos] == '+')
      ++Pos;
    bool SeenExp = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C)) || C == '.') {
        ++Pos;
        continue;
      }
      if ((C == 'e' || C == 'E') && !SeenExp) {
        SeenExp = true;
        ++Pos;
        if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
          ++Pos;
        continue;
      }
      break;
    }
    return std::string(Text.substr(Start, Pos - Start));
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// A pending %name operand awaiting resolution at the end of a function.
struct Fixup {
  Instruction *Inst;
  unsigned OperandIndex;
  std::string LocalName;
  unsigned Line;
};

/// Recursive-descent parser for the printed syntax.
class Parser {
public:
  explicit Parser(std::string_view Text, std::string FileName = "")
      : Lex(Text), FileName(std::move(FileName)) {
    advance();
  }

  Expected<std::unique_ptr<Module>> parse();

private:
  void advance() { Cur = Lex.next(); }
  bool is(Tok Kind) const { return Cur.Kind == Kind; }
  bool isIdent(std::string_view Text) const {
    return Cur.Kind == Tok::Ident && Cur.Text == Text;
  }
  bool accept(Tok Kind) {
    if (!is(Kind))
      return false;
    advance();
    return true;
  }

  std::string err(std::string Why) const {
    return "parse error at line " + std::to_string(Cur.Line) + ": " +
           std::move(Why) + " (got '" + Cur.Text + "')";
  }

  Type *parseType(std::string &ErrorOut);
  Value *parseTypedOperand(Type *Ty, Instruction *Inst, unsigned Index,
                           std::string &ErrorOut);
  Error parseGlobal();
  Error parseFunction(bool IsDeclaration);
  Error parseFunctionBody(Function *F);
  Error parseInstructionTail(Function *F, BasicBlock *BB, std::string OpName,
                             std::string ResultName);

  /// Appends a fresh instruction and registers its result name.
  Instruction *emit(BasicBlock *BB, Opcode Op, Type *Ty,
                    const std::string &ResultName) {
    auto I = std::make_unique<Instruction>(Op, Ty);
    Instruction *Raw = BB->append(std::move(I));
    if (!ResultName.empty()) {
      Raw->setName(ResultName);
      Locals[ResultName] = Raw;
    }
    // When parsing a named file, stamp the instruction so diagnostics
    // can print file:line. Locs stay unset for anonymous text (the
    // historical behavior — sample attribution relies on builder-set
    // locs only).
    if (!FileName.empty())
      Raw->setLoc(SourceLoc{FileName, Cur.Line,
                            BB->parent() ? BB->parent()->name() : ""});
    return Raw;
  }

  /// Parses one typed operand and appends it to \p I.
  bool addOperand(Instruction *I, Type *Ty, std::string &ErrorOut) {
    unsigned Index = I->numOperands();
    I->addOperand(nullptr);
    Value *V = parseTypedOperand(Ty, I, Index, ErrorOut);
    if (!V)
      return false;
    I->setOperand(Index, V);
    return true;
  }

  BasicBlock *blockByName(const std::string &Name, std::string &ErrorOut) {
    auto It = Blocks.find(Name);
    if (It == Blocks.end()) {
      ErrorOut = err("reference to unknown block '" + Name + "'");
      return nullptr;
    }
    return It->second;
  }

  Lexer Lex;
  /// When non-empty, every emitted instruction gets a SourceLoc of this
  /// file and the current lexer line.
  std::string FileName;
  Token Cur;
  std::unique_ptr<Module> M;
  // Per-function parsing state.
  std::map<std::string, Value *> Locals;
  std::map<std::string, BasicBlock *> Blocks;
  std::vector<Fixup> Fixups;
};

} // namespace

Type *Parser::parseType(std::string &ErrorOut) {
  Context &Ctx = M->context();
  if (is(Tok::Less)) {
    advance();
    if (!is(Tok::Integer)) {
      ErrorOut = err("expected vector lane count");
      return nullptr;
    }
    unsigned Lanes = std::strtoul(Cur.Text.c_str(), nullptr, 10);
    advance();
    if (!isIdent("x")) {
      ErrorOut = err("expected 'x' in vector type");
      return nullptr;
    }
    advance();
    Type *Elem = parseType(ErrorOut);
    if (!Elem)
      return nullptr;
    if (!accept(Tok::Greater)) {
      ErrorOut = err("expected '>' closing vector type");
      return nullptr;
    }
    return Ctx.vectorTy(Elem, Lanes);
  }
  if (!is(Tok::Ident)) {
    ErrorOut = err("expected a type");
    return nullptr;
  }
  Type *Ty = nullptr;
  if (Cur.Text == "void")
    Ty = Ctx.voidTy();
  else if (Cur.Text == "i1")
    Ty = Ctx.i1Ty();
  else if (Cur.Text == "i8")
    Ty = Ctx.i8Ty();
  else if (Cur.Text == "i32")
    Ty = Ctx.i32Ty();
  else if (Cur.Text == "i64")
    Ty = Ctx.i64Ty();
  else if (Cur.Text == "f32")
    Ty = Ctx.f32Ty();
  else if (Cur.Text == "f64")
    Ty = Ctx.f64Ty();
  else if (Cur.Text == "ptr")
    Ty = Ctx.ptrTy();
  if (!Ty) {
    ErrorOut = err("unknown type '" + Cur.Text + "'");
    return nullptr;
  }
  advance();
  return Ty;
}

Value *Parser::parseTypedOperand(Type *Ty, Instruction *Inst, unsigned Index,
                                 std::string &ErrorOut) {
  Context &Ctx = M->context();
  if (is(Tok::Integer)) {
    int64_t V = std::strtoll(Cur.Text.c_str(), nullptr, 10);
    advance();
    Type *ScalarTy = Ty->scalarType();
    if (ScalarTy->isFloat())
      return Ctx.constFP(ScalarTy, static_cast<double>(V));
    if (!ScalarTy->isInteger()) {
      ErrorOut = err("integer constant where " + Ty->str() + " expected");
      return nullptr;
    }
    return Ctx.constInt(ScalarTy, static_cast<uint64_t>(V));
  }
  if (is(Tok::Float)) {
    double V = std::strtod(Cur.Text.c_str(), nullptr);
    advance();
    Type *ScalarTy = Ty->scalarType();
    if (!ScalarTy->isFloat()) {
      ErrorOut = err("float constant where " + Ty->str() + " expected");
      return nullptr;
    }
    return Ctx.constFP(ScalarTy, V);
  }
  if (is(Tok::Global)) {
    std::string Name = Cur.Text;
    advance();
    if (GlobalVariable *GV = M->global(Name))
      return GV;
    if (Function *F = M->function(Name))
      return F;
    ErrorOut = err("reference to unknown global '@" + Name + "'");
    return nullptr;
  }
  if (is(Tok::Local)) {
    std::string Name = Cur.Text;
    unsigned Line = Cur.Line;
    advance();
    auto It = Locals.find(Name);
    if (It != Locals.end())
      return It->second;
    // Forward reference: record a fixup and return a typed placeholder.
    assert(Inst && "forward reference in a context without an instruction");
    Fixups.push_back(Fixup{Inst, Index, Name, Line});
    Type *ScalarTy = Ty->scalarType();
    if (ScalarTy->isFloat())
      return Ctx.constFP(ScalarTy, 0.0);
    return Ctx.constI64(0);
  }
  ErrorOut = err("expected an operand");
  return nullptr;
}

Error Parser::parseGlobal() {
  // global @name <sizeBytes>
  advance(); // 'global'
  if (!is(Tok::Global))
    return Error(err("expected global name"));
  std::string Name = Cur.Text;
  advance();
  if (!is(Tok::Integer))
    return Error(err("expected global size in bytes"));
  uint64_t Size = std::strtoull(Cur.Text.c_str(), nullptr, 10);
  advance();
  M->createGlobal(Name, Size);
  return Error::success();
}

static Expected<Opcode> opcodeByName(const std::string &Name) {
  static const std::map<std::string, Opcode> Table = {
      {"add", Opcode::Add},
      {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},
      {"sdiv", Opcode::SDiv},
      {"udiv", Opcode::UDiv},
      {"srem", Opcode::SRem},
      {"urem", Opcode::URem},
      {"and", Opcode::And},
      {"or", Opcode::Or},
      {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},
      {"lshr", Opcode::LShr},
      {"ashr", Opcode::AShr},
      {"fadd", Opcode::FAdd},
      {"fsub", Opcode::FSub},
      {"fmul", Opcode::FMul},
      {"fdiv", Opcode::FDiv},
      {"fneg", Opcode::FNeg},
      {"fma", Opcode::Fma},
      {"icmp", Opcode::ICmp},
      {"fcmp", Opcode::FCmp},
      {"trunc", Opcode::Trunc},
      {"zext", Opcode::ZExt},
      {"sext", Opcode::SExt},
      {"fptosi", Opcode::FPToSI},
      {"sitofp", Opcode::SIToFP},
      {"fptrunc", Opcode::FPTrunc},
      {"fpext", Opcode::FPExt},
      {"splat", Opcode::Splat},
      {"extractelement", Opcode::ExtractElement},
      {"reduce_fadd", Opcode::ReduceFAdd},
      {"reduce_add", Opcode::ReduceAdd},
      {"alloca", Opcode::Alloca},
      {"load", Opcode::Load},
      {"store", Opcode::Store},
      {"ptradd", Opcode::PtrAdd},
      {"br", Opcode::Br},
      {"cond_br", Opcode::CondBr},
      {"ret", Opcode::Ret},
      {"call", Opcode::Call},
      {"phi", Opcode::Phi},
      {"select", Opcode::Select},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return makeError<Opcode>("unknown opcode '" + Name + "'");
  return It->second;
}

static bool icmpPredByName(const std::string &Name, ICmpPred &Out) {
  static const std::map<std::string, ICmpPred> Table = {
      {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},   {"slt", ICmpPred::SLT},
      {"sle", ICmpPred::SLE}, {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
      {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE}, {"ugt", ICmpPred::UGT},
      {"uge", ICmpPred::UGE}};
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

static bool fcmpPredByName(const std::string &Name, FCmpPred &Out) {
  static const std::map<std::string, FCmpPred> Table = {
      {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE}, {"olt", FCmpPred::OLT},
      {"ole", FCmpPred::OLE}, {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE}};
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

Error Parser::parseInstructionTail(Function *F, BasicBlock *BB,
                                   std::string OpName,
                                   std::string ResultName) {
  Context &Ctx = M->context();
  Expected<Opcode> OpOr = opcodeByName(OpName);
  if (!OpOr)
    return Error(err(OpOr.errorMessage()));
  Opcode Op = *OpOr;
  std::string ErrorOut;

  // Binary arithmetic: "<op> <type> a, b".
  auto ParseBinary = [&]() -> Error {
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ty, ResultName);
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' between operands"));
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  };

  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return ParseBinary();

  case Opcode::FNeg: {
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ty, ResultName);
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }

  case Opcode::Fma: {
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ty, ResultName);
    for (unsigned N = 0; N != 3; ++N) {
      if (N != 0 && !accept(Tok::Comma))
        return Error(err("expected ',' between fma operands"));
      if (!addOperand(I, Ty, ErrorOut))
        return Error(std::move(ErrorOut));
    }
    return Error::success();
  }

  case Opcode::ICmp:
  case Opcode::FCmp: {
    if (!is(Tok::Ident))
      return Error(err("expected comparison predicate"));
    std::string PredText = Cur.Text;
    advance();
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ctx.i1Ty(), ResultName);
    if (Op == Opcode::ICmp) {
      ICmpPred Pred;
      if (!icmpPredByName(PredText, Pred))
        return Error(err("unknown icmp predicate '" + PredText + "'"));
      I->setICmpPred(Pred);
    } else {
      FCmpPred Pred;
      if (!fcmpPredByName(PredText, Pred))
        return Error(err("unknown fcmp predicate '" + PredText + "'"));
      I->setFCmpPred(Pred);
    }
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' between comparison operands"));
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }

  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::FPToSI:
  case Opcode::SIToFP:
  case Opcode::FPTrunc:
  case Opcode::FPExt:
  case Opcode::Splat: {
    // "<op> <srcTy> v to <dstTy>"
    Type *SrcTy = parseType(ErrorOut);
    if (!SrcTy)
      return Error(std::move(ErrorOut));
    // The result type is only known after 'to', but operands need an
    // owning instruction for fixups: emit with a provisional type and
    // rebuild with the final type below.
    Instruction *I = emit(BB, Op, SrcTy, ResultName);
    if (!addOperand(I, SrcTy, ErrorOut))
      return Error(std::move(ErrorOut));
    if (!isIdent("to"))
      return Error(err("expected 'to' in cast"));
    advance();
    Type *DstTy = parseType(ErrorOut);
    if (!DstTy)
      return Error(std::move(ErrorOut));
    // Rebuild with the correct result type (Instruction type is fixed at
    // construction). Swap by replacing the just-appended instruction.
    size_t Index = BB->indexOf(I);
    std::unique_ptr<Instruction> Old = BB->remove(Index);
    auto Fresh = std::make_unique<Instruction>(Op, DstTy);
    Fresh->addOperand(Old->operand(0));
    Instruction *Raw = BB->insertAt(Index, std::move(Fresh));
    if (!ResultName.empty()) {
      Raw->setName(ResultName);
      Locals[ResultName] = Raw;
    }
    // Re-target any fixups that referenced the replaced instruction.
    for (Fixup &Fix : Fixups)
      if (Fix.Inst == Old.get())
        Fix.Inst = Raw;
    return Error::success();
  }

  case Opcode::ExtractElement: {
    Type *VecTy = parseType(ErrorOut);
    if (!VecTy)
      return Error(std::move(ErrorOut));
    if (!VecTy->isVector())
      return Error(err("extractelement requires a vector type"));
    Instruction *I = emit(BB, Op, VecTy->elementType(), ResultName);
    if (!addOperand(I, VecTy, ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' before lane index"));
    if (!addOperand(I, Ctx.i64Ty(), ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }

  case Opcode::ReduceFAdd:
  case Opcode::ReduceAdd: {
    Type *VecTy = parseType(ErrorOut);
    if (!VecTy)
      return Error(std::move(ErrorOut));
    if (!VecTy->isVector())
      return Error(err("reduction requires a vector type"));
    Instruction *I = emit(BB, Op, VecTy->elementType(), ResultName);
    if (!addOperand(I, VecTy, ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }

  case Opcode::Alloca: {
    if (!is(Tok::Integer))
      return Error(err("expected alloca size in bytes"));
    uint64_t Bytes = std::strtoull(Cur.Text.c_str(), nullptr, 10);
    advance();
    Instruction *I = emit(BB, Op, Ctx.ptrTy(), ResultName);
    I->setAllocaBytes(Bytes);
    return Error::success();
  }

  case Opcode::Load: {
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' after load type"));
    Instruction *I = emit(BB, Op, Ty, ResultName);
    if (!addOperand(I, Ctx.ptrTy(), ErrorOut))
      return Error(std::move(ErrorOut));
    if (isIdent("stride")) {
      advance();
      if (!addOperand(I, Ctx.i64Ty(), ErrorOut))
        return Error(std::move(ErrorOut));
    }
    return Error::success();
  }

  case Opcode::Store: {
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ctx.voidTy(), ResultName);
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' after stored value"));
    if (!addOperand(I, Ctx.ptrTy(), ErrorOut))
      return Error(std::move(ErrorOut));
    if (isIdent("stride")) {
      advance();
      if (!addOperand(I, Ctx.i64Ty(), ErrorOut))
        return Error(std::move(ErrorOut));
    }
    return Error::success();
  }

  case Opcode::PtrAdd: {
    Type *Ty = parseType(ErrorOut); // always "ptr"
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ctx.ptrTy(), ResultName);
    if (!addOperand(I, Ctx.ptrTy(), ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' after ptradd base"));
    if (!addOperand(I, Ctx.i64Ty(), ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }

  case Opcode::Br: {
    if (!is(Tok::Ident))
      return Error(err("expected branch target label"));
    BasicBlock *Dest = blockByName(Cur.Text, ErrorOut);
    if (!Dest)
      return Error(std::move(ErrorOut));
    advance();
    Instruction *I = emit(BB, Op, Ctx.voidTy(), "");
    I->addSuccessor(Dest);
    return Error::success();
  }

  case Opcode::CondBr: {
    Instruction *I = emit(BB, Op, Ctx.voidTy(), "");
    if (!addOperand(I, Ctx.i1Ty(), ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' after condition"));
    if (!is(Tok::Ident))
      return Error(err("expected true target label"));
    BasicBlock *TrueBB = blockByName(Cur.Text, ErrorOut);
    if (!TrueBB)
      return Error(std::move(ErrorOut));
    advance();
    if (!accept(Tok::Comma))
      return Error(err("expected ',' between targets"));
    if (!is(Tok::Ident))
      return Error(err("expected false target label"));
    BasicBlock *FalseBB = blockByName(Cur.Text, ErrorOut);
    if (!FalseBB)
      return Error(std::move(ErrorOut));
    advance();
    I->addSuccessor(TrueBB);
    I->addSuccessor(FalseBB);
    return Error::success();
  }

  case Opcode::Ret: {
    Instruction *I = emit(BB, Op, Ctx.voidTy(), "");
    if (F->returnType()->isVoid())
      return Error::success();
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    if (!addOperand(I, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }

  case Opcode::Call: {
    Type *RetTy = parseType(ErrorOut);
    if (!RetTy)
      return Error(std::move(ErrorOut));
    if (!is(Tok::Global))
      return Error(err("expected callee name"));
    Function *Callee = M->function(Cur.Text);
    if (!Callee)
      return Error(err("call to unknown function '@" + Cur.Text + "'"));
    advance();
    if (!accept(Tok::LParen))
      return Error(err("expected '(' after callee"));
    Instruction *I = emit(BB, Op, RetTy, ResultName);
    I->setCallee(Callee);
    if (!is(Tok::RParen)) {
      while (true) {
        Type *ArgTy = parseType(ErrorOut);
        if (!ArgTy)
          return Error(std::move(ErrorOut));
        if (!addOperand(I, ArgTy, ErrorOut))
          return Error(std::move(ErrorOut));
        if (accept(Tok::Comma))
          continue;
        break;
      }
    }
    if (!accept(Tok::RParen))
      return Error(err("expected ')' closing call arguments"));
    return Error::success();
  }

  case Opcode::Phi: {
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    Instruction *I = emit(BB, Op, Ty, ResultName);
    while (true) {
      if (!accept(Tok::LBracket))
        return Error(err("expected '[' opening phi incoming"));
      if (!addOperand(I, Ty, ErrorOut))
        return Error(std::move(ErrorOut));
      if (!accept(Tok::Comma))
        return Error(err("expected ',' inside phi incoming"));
      if (!is(Tok::Ident))
        return Error(err("expected phi incoming block label"));
      BasicBlock *Incoming = blockByName(Cur.Text, ErrorOut);
      if (!Incoming)
        return Error(std::move(ErrorOut));
      advance();
      I->appendIncomingBlock(Incoming);
      if (!accept(Tok::RBracket))
        return Error(err("expected ']' closing phi incoming"));
      if (accept(Tok::Comma))
        continue;
      break;
    }
    return Error::success();
  }

  case Opcode::Select: {
    Instruction *I = emit(BB, Op, Ctx.voidTy(), "");
    // Parse condition first; the result type follows.
    if (!addOperand(I, Ctx.i1Ty(), ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' after select condition"));
    Type *Ty = parseType(ErrorOut);
    if (!Ty)
      return Error(std::move(ErrorOut));
    // Rebuild with the correct type.
    size_t Index = BB->indexOf(I);
    std::unique_ptr<Instruction> Old = BB->remove(Index);
    auto Fresh = std::make_unique<Instruction>(Op, Ty);
    Fresh->addOperand(Old->operand(0));
    Instruction *Raw = BB->insertAt(Index, std::move(Fresh));
    if (!ResultName.empty()) {
      Raw->setName(ResultName);
      Locals[ResultName] = Raw;
    }
    for (Fixup &Fix : Fixups)
      if (Fix.Inst == Old.get())
        Fix.Inst = Raw;
    if (!addOperand(Raw, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    if (!accept(Tok::Comma))
      return Error(err("expected ',' between select arms"));
    if (!addOperand(Raw, Ty, ErrorOut))
      return Error(std::move(ErrorOut));
    return Error::success();
  }
  }
  MPERF_UNREACHABLE("unhandled opcode in parser");
}

Error Parser::parseFunction(bool IsDeclaration) {
  advance(); // 'func'
  if (!is(Tok::Global))
    return Error(err("expected function name"));
  std::string Name = Cur.Text;
  advance();
  if (!accept(Tok::LParen))
    return Error(err("expected '(' after function name"));

  std::vector<Type *> ParamTys;
  std::vector<std::string> ParamNames;
  if (!is(Tok::RParen)) {
    while (true) {
      std::string ErrorOut;
      Type *Ty = parseType(ErrorOut);
      if (!Ty)
        return Error(std::move(ErrorOut));
      ParamTys.push_back(Ty);
      if (is(Tok::Local)) {
        ParamNames.push_back(Cur.Text);
        advance();
      } else {
        ParamNames.push_back("");
      }
      if (accept(Tok::Comma))
        continue;
      break;
    }
  }
  if (!accept(Tok::RParen))
    return Error(err("expected ')' after parameters"));
  if (!accept(Tok::Arrow))
    return Error(err("expected '->' before return type"));
  std::string ErrorOut;
  Type *RetTy = parseType(ErrorOut);
  if (!RetTy)
    return Error(std::move(ErrorOut));

  Function *F = M->function(Name);
  if (F) {
    if (!F->isDeclaration() || IsDeclaration)
      return Error(err("redefinition of function '@" + Name + "'"));
  } else {
    F = M->createFunction(Name, RetTy, ParamTys);
    for (unsigned I = 0, E = F->numArgs(); I != E; ++I)
      if (!ParamNames[I].empty())
        F->arg(I)->setName(ParamNames[I]);
  }

  if (IsDeclaration || !is(Tok::LBrace))
    return Error::success();
  return parseFunctionBody(F);
}

Error Parser::parseFunctionBody(Function *F) {
  advance(); // '{'
  Locals.clear();
  Blocks.clear();
  Fixups.clear();
  for (unsigned I = 0, E = F->numArgs(); I != E; ++I)
    Locals[F->arg(I)->name()] = F->arg(I);

  // Pre-scan for block labels so branches and phis can reference any
  // block, and so block order matches label order in the text.
  {
    Lexer ScanLex = Lex;
    Token ScanCur = Cur;
    Token Prev;
    while (ScanCur.Kind != Tok::End && ScanCur.Kind != Tok::RBrace) {
      Token Next = ScanLex.next();
      if (ScanCur.Kind == Tok::Ident && Next.Kind == Tok::Colon) {
        if (Blocks.find(ScanCur.Text) == Blocks.end())
          Blocks.emplace(ScanCur.Text, F->createBlock(ScanCur.Text));
      }
      Prev = ScanCur;
      ScanCur = Next;
    }
    (void)Prev;
  }

  BasicBlock *CurBB = nullptr;
  while (!is(Tok::RBrace)) {
    if (is(Tok::End))
      return Error(err("unexpected end of input inside function body"));
    if (is(Tok::Ident)) {
      std::string First = Cur.Text;
      advance();
      if (accept(Tok::Colon)) {
        std::string ErrorOut;
        CurBB = blockByName(First, ErrorOut);
        if (!CurBB)
          return Error(std::move(ErrorOut));
        continue;
      }
      if (!CurBB)
        return Error(err("instruction before any block label"));
      if (Error E = parseInstructionTail(F, CurBB, First, ""))
        return E;
      continue;
    }
    if (is(Tok::Local)) {
      std::string ResultName = Cur.Text;
      advance();
      if (!accept(Tok::Equals))
        return Error(err("expected '=' after result name"));
      if (!is(Tok::Ident))
        return Error(err("expected opcode"));
      std::string OpName = Cur.Text;
      advance();
      if (!CurBB)
        return Error(err("instruction before any block label"));
      if (Error E = parseInstructionTail(F, CurBB, OpName, ResultName))
        return E;
      continue;
    }
    return Error(err("expected block label or instruction"));
  }
  advance(); // '}'

  for (const Fixup &Fix : Fixups) {
    auto It = Locals.find(Fix.LocalName);
    if (It == Locals.end())
      return Error("parse error at line " + std::to_string(Fix.Line) +
                   ": use of undefined value '%" + Fix.LocalName + "'");
    Fix.Inst->setOperand(Fix.OperandIndex, It->second);
  }
  return Error::success();
}

Expected<std::unique_ptr<Module>> Parser::parse() {
  if (!isIdent("module"))
    return makeError<std::unique_ptr<Module>>(err("expected 'module'"));
  advance();
  if (!is(Tok::Ident))
    return makeError<std::unique_ptr<Module>>(err("expected module name"));
  M = std::make_unique<Module>(Cur.Text);
  advance();

  while (!is(Tok::End)) {
    if (isIdent("global")) {
      if (Error E = parseGlobal())
        return makeError<std::unique_ptr<Module>>(E.message());
      continue;
    }
    if (isIdent("declare")) {
      advance();
      if (!isIdent("func"))
        return makeError<std::unique_ptr<Module>>(
            err("expected 'func' after 'declare'"));
      if (Error E = parseFunction(/*IsDeclaration=*/true))
        return makeError<std::unique_ptr<Module>>(E.message());
      continue;
    }
    if (isIdent("func")) {
      if (Error E = parseFunction(/*IsDeclaration=*/false))
        return makeError<std::unique_ptr<Module>>(E.message());
      continue;
    }
    return makeError<std::unique_ptr<Module>>(
        err("expected 'global', 'declare' or 'func'"));
  }
  return std::move(M);
}

/// The "parse" phase of the build pipeline, observable alongside the
/// Program::compile phases (verify/layout/lower/cross-check).
static metrics::Counter &parseNsCounter() {
  static metrics::Counter &C =
      metrics::Registry::global().counter("ir.parse_host_ns");
  return C;
}

Expected<std::unique_ptr<Module>>
mperf::ir::parseModule(std::string_view Text) {
  metrics::ScopedTimerNs T(parseNsCounter());
  trace::ScopedSpan Span("ir.parse");
  Parser P(Text);
  return P.parse();
}

Expected<std::unique_ptr<Module>>
mperf::ir::parseModule(std::string_view Text, std::string FileName) {
  metrics::ScopedTimerNs T(parseNsCounter());
  trace::ScopedSpan Span("ir.parse", FileName);
  Parser P(Text, std::move(FileName));
  return P.parse();
}
