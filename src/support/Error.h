//===- Error.h - Lightweight recoverable error handling -------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable error handling without exceptions, in the spirit of
/// llvm::Expected. An Expected<T> holds either a value or an error message;
/// callers must check before dereferencing.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_SUPPORT_ERROR_H
#define MPERF_SUPPORT_ERROR_H

#include "support/Compiler.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mperf {

/// A recoverable error carrying a human-readable message.
///
/// Error messages follow the LLVM diagnostic style: they start with a
/// lowercase letter and carry enough context to act on.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  /// Returns true if this represents an actual error.
  bool isError() const { return !Message.empty(); }
  explicit operator bool() const { return isError(); }

  const std::string &message() const { return Message; }

  /// Constructs a success value.
  static Error success() { return Error(); }

private:
  std::string Message;
};

/// Tag type used to construct an errored Expected<T> unambiguously.
struct ErrorTag {};

/// Holds either a value of type \p T or an Error.
///
/// Typical usage:
/// \code
///   Expected<Function *> FnOr = parseFunction(Text);
///   if (!FnOr)
///     return Error(FnOr.takeError());
///   Function *Fn = *FnOr;
/// \endcode
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs an error value from an Error.
  Expected(Error E) : Err(std::move(E)) {
    assert(Err.isError() && "constructing Expected from a success Error");
  }

  /// Constructs an error value from a message.
  Expected(ErrorTag, std::string Message) : Err(std::move(Message)) {}

  /// Returns true if a value is present.
  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue() && "dereferencing errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing errored Expected");
    return *Value;
  }
  T *operator->() {
    assert(hasValue() && "dereferencing errored Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(hasValue() && "dereferencing errored Expected");
    return &*Value;
  }

  /// Returns the error message. Only valid when !hasValue().
  const std::string &errorMessage() const {
    assert(!hasValue() && "asking for the error of a success value");
    return Err.message();
  }

  /// Moves the error out of this Expected.
  std::string takeError() {
    assert(!hasValue() && "taking the error of a success value");
    return std::move(const_cast<std::string &>(Err.message()));
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Convenience factory for an errored Expected<T>.
template <typename T> Expected<T> makeError(std::string Message) {
  return Expected<T>(ErrorTag{}, std::move(Message));
}

} // namespace mperf

#endif // MPERF_SUPPORT_ERROR_H
