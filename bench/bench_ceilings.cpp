//===- bench_ceilings.cpp - Machine ceilings per platform -----------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// The microbenchmark-derived Roofline ceilings for every platform: the
// memset memory roof (the paper's 3.16 bytes/cycle figure for the X60),
// the theoretical compute roof, and the measured FMA-chain peak.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Scenario.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace bench;
using namespace mperf;

int main() {
  print("Roofline ceilings per platform (memset + FMA-chain "
        "microbenchmarks on each simulated core)\n\n");

  TextTable T;
  BenchReport Json("ceilings");
  T.addHeader({"Platform", "memset B/cyc", "DRAM roof GB/s", "L1 roof GB/s",
               "compute roof GFLOP/s", "measured FMA GFLOP/s"});
  for (const hw::Platform &P : hw::allPlatforms()) {
    auto C = roofline::measureCeilings(P);
    if (!C) {
      std::fprintf(stderr, "error: %s\n", C.errorMessage().c_str());
      return 1;
    }
    T.addRow({P.CoreName, fixed(C->BytesPerCycle, 2),
              fixed(C->MemBandwidthGBs, 2), fixed(C->L1BandwidthGBs, 1),
              fixed(C->PeakGFlops, 1), fixed(C->MeasuredGFlops, 1)});
    const std::string Key = driver::platformKey(P);
    Json.metric("bytes_per_cycle." + Key, C->BytesPerCycle);
    Json.metric("mem_roof_gbs." + Key, C->MemBandwidthGBs);
    Json.metric("peak_gflops." + Key, C->PeakGFlops);
    Json.metric("measured_gflops." + Key, C->MeasuredGFlops);
  }
  print(T.render());

  auto X60 = roofline::measureCeilings(hw::spacemitX60());
  print("\nPaper anchors (X60): memset ~3.16 bytes/cycle -> ~4.7 GiB/s at "
        "1.6 GHz; compute roof 25.6 GFLOP/s.\n");
  print("Measured here:       " + fixed(X60->BytesPerCycle, 2) +
        " bytes/cycle -> " + fixed(X60->MemBandwidthGBs / 1.073742, 2) +
        " GiB/s; compute roof " + fixed(X60->PeakGFlops, 1) +
        " GFLOP/s.\n");
  Json.addTable("ceilings", T);
  Json.write();
  return 0;
}
