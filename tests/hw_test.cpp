//===- hw_test.cpp - Cache and core model tests --------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "hw/CacheSim.h"
#include "hw/CoreModel.h"
#include "hw/Platform.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace mperf;
using namespace mperf::hw;
using namespace mperf::vm;

namespace {

RetiredOp scalarOp(OpClass Class) {
  RetiredOp Op;
  Op.Class = Class;
  Op.Lanes = 1;
  return Op;
}

RetiredOp loadAt(uint64_t Addr, uint32_t Bytes = 8) {
  RetiredOp Op;
  Op.Class = OpClass::Load;
  Op.Addr = Addr;
  Op.Bytes = Bytes;
  Op.Lanes = 1;
  return Op;
}

} // namespace

//===----------------------------------------------------------------------===//
// CacheSim
//===----------------------------------------------------------------------===//

TEST(CacheSimTest, ColdMissThenHit) {
  CacheConfig Config;
  CacheSim Cache(Config);
  EXPECT_EQ(Cache.access(0x1000, 8), MemLevel::DRAM);
  EXPECT_EQ(Cache.access(0x1000, 8), MemLevel::L1);
  EXPECT_EQ(Cache.access(0x1008, 8), MemLevel::L1); // same line
  EXPECT_EQ(Cache.stats().L1Hits, 2u);
  EXPECT_EQ(Cache.stats().L1Misses, 1u);
  EXPECT_EQ(Cache.stats().DramBytes, 64u);
}

TEST(CacheSimTest, SpansMultipleLines) {
  CacheConfig Config;
  CacheSim Cache(Config);
  // A 32-byte access at the very end of a line touches two lines.
  EXPECT_EQ(Cache.access(0x1000 + 48, 32), MemLevel::DRAM);
  EXPECT_EQ(Cache.stats().L1Misses, 2u);
}

TEST(CacheSimTest, L1EvictionFallsBackToL2) {
  CacheConfig Config;
  Config.L1 = {1024, 2, 64, 0}; // 8 sets x 2 ways, tiny
  Config.L2 = {64 * 1024, 8, 64, 10};
  CacheSim Cache(Config);
  // Fill one set with 3 conflicting lines (stride = sets * linesize).
  uint64_t Stride = (1024 / 64 / 2) * 64;
  Cache.access(0 * Stride, 8);
  Cache.access(1 * Stride, 8);
  Cache.access(2 * Stride, 8); // evicts the LRU line
  EXPECT_EQ(Cache.access(0 * Stride, 8), MemLevel::L2); // L1 miss, L2 hit
  EXPECT_GT(Cache.stats().L2Hits, 0u);
}

TEST(CacheSimTest, LruKeepsHotLine) {
  CacheConfig Config;
  Config.L1 = {1024, 2, 64, 0};
  CacheSim Cache(Config);
  uint64_t Stride = (1024 / 64 / 2) * 64;
  Cache.access(0 * Stride, 8);
  Cache.access(1 * Stride, 8);
  Cache.access(0 * Stride, 8); // touch line 0: line 1 becomes LRU
  Cache.access(2 * Stride, 8); // evicts line 1
  EXPECT_EQ(Cache.access(0 * Stride, 8), MemLevel::L1);
}

TEST(CacheSimTest, ResetClearsState) {
  CacheSim Cache(CacheConfig{});
  Cache.access(0x2000, 8);
  Cache.reset();
  EXPECT_EQ(Cache.stats().L1Misses, 0u);
  EXPECT_EQ(Cache.access(0x2000, 8), MemLevel::DRAM);
}

TEST(CacheSimTest, LatencyOrdering) {
  CacheSim Cache(CacheConfig{});
  EXPECT_LT(Cache.latencyFor(MemLevel::L1), Cache.latencyFor(MemLevel::L2));
  EXPECT_LT(Cache.latencyFor(MemLevel::L2), Cache.latencyFor(MemLevel::DRAM));
}

//===----------------------------------------------------------------------===//
// CoreModel
//===----------------------------------------------------------------------===//

TEST(CoreModelTest, CyclesAccumulatePerClassCost) {
  CoreConfig Core;
  Core.CostIntAlu = 0.5;
  Core.CostIntDiv = 12;
  CoreModel Model(Core, CacheConfig{});
  Model.onRetire(scalarOp(OpClass::IntAlu));
  Model.onRetire(scalarOp(OpClass::IntAlu));
  EXPECT_DOUBLE_EQ(Model.stats().Cycles, 1.0);
  Model.onRetire(scalarOp(OpClass::IntDiv));
  EXPECT_DOUBLE_EQ(Model.stats().Cycles, 13.0);
  EXPECT_EQ(Model.stats().RetiredIrOps, 3u);
}

TEST(CoreModelTest, InstretFactorScalesInstructionCount) {
  CoreConfig Core;
  Core.InstretFactor = 1.85;
  CoreModel Model(Core, CacheConfig{});
  for (int I = 0; I < 100; ++I)
    Model.onRetire(scalarOp(OpClass::IntAlu));
  EXPECT_NEAR(Model.stats().Instret, 185.0, 1e-9);
}

TEST(CoreModelTest, MemoryStallsDividedByMlp) {
  CoreConfig InOrder;
  InOrder.Mlp = 1.0;
  InOrder.CostLoad = 0.5;
  CoreConfig OoO = InOrder;
  OoO.Mlp = 4.0;
  CacheConfig Cache;
  Cache.DramLatency = 100;
  Cache.DramBytesPerCycle = 1e9; // disable the bandwidth floor

  CoreModel A(InOrder, Cache), B(OoO, Cache);
  A.onRetire(loadAt(0x10000));
  B.onRetire(loadAt(0x10000));
  // Same cold DRAM miss: the OoO core hides 3/4 of the latency.
  EXPECT_GT(A.stats().Cycles, B.stats().Cycles * 3);
}

TEST(CoreModelTest, BandwidthFloorBoundsStreaming) {
  CoreConfig Core;
  Core.CostStore = 0.0001; // absurdly fast issue
  CacheConfig Cache;
  Cache.DramBytesPerCycle = 2.0;
  Cache.L1 = {1024, 2, 64, 0}; // tiny cache: everything streams
  Cache.L2 = {2048, 2, 64, 1};
  Cache.DramLatency = 0; // isolate the bandwidth term
  CoreModel Model(Core, Cache);
  // Stream 1 MiB of stores.
  for (uint64_t Addr = 0; Addr < (1 << 20); Addr += 64) {
    RetiredOp Op;
    Op.Class = OpClass::Store;
    Op.Addr = Addr;
    Op.Bytes = 64;
    Model.onRetire(Op);
  }
  double MinCycles = static_cast<double>(1 << 20) / 2.0;
  EXPECT_GE(Model.stats().Cycles, MinCycles * 0.95);
}

TEST(CoreModelTest, BranchPredictorLearnsLoops) {
  CoreConfig Core;
  Core.CostBranch = 0.5;
  Core.BranchMissPenalty = 10;
  CoreModel Model(Core, CacheConfig{});
  // A loop-back branch taken 100x in a row: at most the first couple
  // mispredict.
  ir::Module M("t");
  ir::Instruction Branch(ir::Opcode::CondBr, M.context().voidTy());
  RetiredOp Op;
  Op.Class = OpClass::Branch;
  Op.Inst = &Branch;
  Op.Taken = true;
  for (int I = 0; I < 100; ++I)
    Model.onRetire(Op);
  EXPECT_LE(Model.stats().BranchMispredicts, 2u);

  // Alternating branch: the trip-count predictor learns period-2
  // patterns quickly, like a real local-history predictor.
  CoreModel Model2(Core, CacheConfig{});
  for (int I = 0; I < 100; ++I) {
    Op.Taken = (I % 2) == 0;
    Model2.onRetire(Op);
  }
  EXPECT_LE(Model2.stats().BranchMispredicts, 5u);

  // Data-dependent (pseudo-random) branch: stays hard to predict.
  CoreModel Model3(Core, CacheConfig{});
  uint64_t Lcg = 12345;
  for (int I = 0; I < 200; ++I) {
    Lcg = Lcg * 6364136223846793005ull + 1442695040888963407ull;
    Op.Taken = (Lcg >> 62) & 1;
    Model3.onRetire(Op);
  }
  EXPECT_GT(Model3.stats().BranchMispredicts, 40u);
}

TEST(CoreModelTest, StridedVectorAccessPaysPerLane) {
  CoreConfig Core;
  Core.VecMemCost = 2.0;
  Core.VecStridedLaneCost = 1.0;
  CacheConfig Cache;
  Cache.L1 = {1 << 20, 8, 64, 0}; // everything hits after warmup
  CoreModel Model(Core, Cache);

  RetiredOp Contig;
  Contig.Class = OpClass::Load;
  Contig.Addr = 0;
  Contig.Bytes = 32;
  Contig.Lanes = 8;
  Contig.StrideBytes = 0;

  RetiredOp Strided = Contig;
  Strided.StrideBytes = 256;

  Model.onRetire(Contig); // warm up + 2 cycles
  double After1 = Model.stats().Cycles;
  Model.onRetire(Contig);
  double ContigCost = Model.stats().Cycles - After1;
  Model.onRetire(Strided); // warms its lanes
  double After3 = Model.stats().Cycles;
  Model.onRetire(Strided);
  double StridedCost = Model.stats().Cycles - After3;
  EXPECT_GT(StridedCost, ContigCost * 2.5);
}

TEST(CoreModelTest, FpSpecCountsExceedActual) {
  CoreConfig Core;
  Core.FpSpecFactor = 1.4;
  CoreModel Model(Core, CacheConfig{});
  RetiredOp Fma = scalarOp(OpClass::FpFma);
  Fma.Lanes = 8;
  Model.onRetire(Fma);
  EXPECT_DOUBLE_EQ(Model.stats().FpOpsActual, 16.0);
  EXPECT_NEAR(Model.stats().FpOpsSpec, 22.4, 1e-9);
}

TEST(CoreModelTest, ModeAttributionViaEventSink) {
  CoreModel Model(CoreConfig{}, CacheConfig{});
  double UCycles = 0, SCycles = 0;
  Model.setEventSink([&](const EventDeltas &D) {
    if (D.Mode == PrivMode::User)
      UCycles += D.Cycles;
    else if (D.Mode == PrivMode::Supervisor)
      SCycles += D.Cycles;
  });
  Model.onRetire(scalarOp(OpClass::IntAlu));
  Model.setMode(PrivMode::Supervisor);
  Model.addCycles(100);
  Model.setMode(PrivMode::User);
  Model.onRetire(scalarOp(OpClass::IntAlu));
  EXPECT_GT(UCycles, 0);
  EXPECT_DOUBLE_EQ(SCycles, 100);
}

//===----------------------------------------------------------------------===//
// Platform database
//===----------------------------------------------------------------------===//

TEST(PlatformTest, Table1CapabilityMatrix) {
  Platform X60 = spacemitX60();
  EXPECT_FALSE(X60.OutOfOrder);
  EXPECT_EQ(X60.RvvVersion, "1.0");
  EXPECT_EQ(X60.OverflowSupport, "Limited");
  EXPECT_EQ(X60.UpstreamLinux, "No");
  EXPECT_FALSE(X60.PmuCaps.canSample(EventKind::Cycles));
  EXPECT_FALSE(X60.PmuCaps.canSample(EventKind::Instret));
  EXPECT_TRUE(X60.PmuCaps.canSample(EventKind::UModeCycles));

  Platform U74 = sifiveU74();
  EXPECT_FALSE(U74.OutOfOrder);
  EXPECT_EQ(U74.RvvVersion, "Not supported");
  EXPECT_EQ(U74.OverflowSupport, "No");
  EXPECT_EQ(U74.UpstreamLinux, "Yes");
  EXPECT_TRUE(U74.PmuCaps.SamplableEvents.empty());

  Platform C910 = theadC910();
  EXPECT_TRUE(C910.OutOfOrder);
  EXPECT_EQ(C910.RvvVersion, "0.7.1");
  EXPECT_EQ(C910.OverflowSupport, "Yes");
  EXPECT_EQ(C910.UpstreamLinux, "Partial");
  EXPECT_TRUE(C910.PmuCaps.canSample(EventKind::Cycles));
}

TEST(PlatformTest, C906CapabilityRow) {
  // The extra sweep column: in-order single-issue, vector-capable, but
  // with a U74-class PMU (counting only).
  Platform C906 = theadC906();
  EXPECT_FALSE(C906.OutOfOrder);
  EXPECT_EQ(C906.RvvVersion, "0.7.1");
  EXPECT_EQ(C906.OverflowSupport, "No");
  EXPECT_EQ(C906.UpstreamLinux, "Partial");
  EXPECT_TRUE(C906.PmuCaps.SamplableEvents.empty());
  EXPECT_TRUE(C906.Target.HasVector);

  // Single-issue: no cost class beats one op per cycle.
  EXPECT_GE(C906.Core.CostIntAlu, 1.0);
  EXPECT_GE(C906.Core.CostLoad, 1.0);
  EXPECT_GE(C906.Core.CostBranch, 1.0);

  // Slower than its big sibling in both frequency and issue width.
  Platform C910 = theadC910();
  EXPECT_LT(C906.Core.FreqGHz, C910.Core.FreqGHz);
  EXPECT_LT(C906.TheoreticalFlopsPerCycle, C910.TheoreticalFlopsPerCycle);
}

TEST(PlatformTest, IdentificationByCsrs) {
  auto Db = allPlatforms();
  EXPECT_EQ(Db.size(), 5u);
  const Platform *P = platformById(Db, spacemitX60().Id);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->CoreName, "SpacemiT X60");
  CpuId Unknown{0xdead, 0xbeef, 0, ""};
  EXPECT_EQ(platformById(Db, Unknown), nullptr);

  // The two T-Head parts share an mvendorid; marchid disambiguates.
  EXPECT_EQ(theadC906().Id.Mvendorid, theadC910().Id.Mvendorid);
  const Platform *C906 = platformById(Db, theadC906().Id);
  ASSERT_NE(C906, nullptr);
  EXPECT_EQ(C906->CoreName, "T-Head C906");
  const Platform *C910 = platformById(Db, theadC910().Id);
  ASSERT_NE(C910, nullptr);
  EXPECT_EQ(C910->CoreName, "T-Head C910");
}

TEST(PlatformTest, X60MemoryRoofConfig) {
  Platform X60 = spacemitX60();
  // The paper's memset-derived roof: ~3.16 bytes/cycle at 1.6 GHz.
  EXPECT_NEAR(X60.Cache.DramBytesPerCycle, 3.16, 0.01);
  EXPECT_NEAR(X60.Core.FreqGHz, 1.6, 0.01);
}
