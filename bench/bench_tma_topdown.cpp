//===- bench_tma_topdown.cpp - The paper's future-work TMA extension ------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Not a paper figure: this bench implements the extension the paper
// names as its primary future work (§6) — a Top-Down Microarchitecture
// Analysis approximation mapped onto the available events — and runs it
// over two contrasting workloads on every platform. The expected story:
// the database workload is bad-speculation/memory-bound on the in-order
// cores and retiring-bound on the wide x86; the matmul kernel shifts
// toward backend-core (the X60's half-width vector unit) and memory.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Scenario.h"
#include "miniperf/TopDown.h"

using namespace bench;
using namespace mperf;

namespace {

/// Runs \p Entry with a bare core model and returns its stats.
hw::CoreStats runWith(const hw::Platform &P, ir::Module &M,
                      const std::string &Entry,
                      const std::vector<vm::RtValue> &Args,
                      const std::function<void(vm::Interpreter &)> &Setup) {
  vm::Interpreter Vm(M);
  hw::CoreModel Core(P.Core, P.Cache);
  Vm.addConsumer(&Core);
  if (Setup)
    Setup(Vm);
  auto R = Vm.run(Entry, Args);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.errorMessage().c_str());
    std::exit(1);
  }
  return Core.stats();
}

} // namespace

int main() {
  print("Extension (paper section 6, future work): Top-Down analysis "
        "approximation\n\n");

  BenchReport Json("tma_topdown");
  print("== database workload (sqlite-like scan) ==\n");
  for (const hw::Platform &P :
       {hw::spacemitX60(), hw::sifiveU74(), hw::intelI5_1135G7()}) {
    auto C = sqliteScale();
    auto W = workloads::buildSqliteLike(C);
    hw::CoreStats Stats =
        runWith(P, *W.M, "main", {vm::RtValue::ofInt(C.NumQueries)}, {});
    miniperf::TopDownBreakdown B = miniperf::computeTopDown(Stats);
    print(miniperf::topDownTable(B, P.CoreName).render());
    print("\n");
    const std::string Key = "sqlite." + driver::platformKey(P);
    Json.metric(Key + ".retiring", B.Retiring);
    Json.metric(Key + ".bad_speculation", B.BadSpeculation);
    Json.metric(Key + ".backend_memory", B.BackendMemory);
  }

  print("== matmul kernel (vectorized where supported) ==\n");
  for (const hw::Platform &P :
       {hw::spacemitX60(), hw::intelI5_1135G7()}) {
    PreparedMatmul R = prepareMatmul(P, matmulScale());
    // The instrumented module needs the roofline runtime bound to the
    // same core model, so wire this run by hand.
    vm::Interpreter Vm(*R.W.M);
    hw::CoreModel Core(P.Core, P.Cache);
    Vm.addConsumer(&Core);
    Environment Env;
    roofline::RooflineRuntime Runtime(R.Loops, Env);
    Runtime.bind(Vm, Core);
    R.W.initialize(Vm);
    workloads::bindClock(Vm, [&Core] { return Core.stats().Cycles; });
    if (!Vm.run("main")) {
      std::fprintf(stderr, "matmul run failed\n");
      return 1;
    }
    miniperf::TopDownBreakdown B = miniperf::computeTopDown(Core.stats());
    print(miniperf::topDownTable(B, P.CoreName).render());
    print("\n");
    const std::string Key = "matmul." + driver::platformKey(P);
    Json.metric(Key + ".retiring", B.Retiring);
    Json.metric(Key + ".backend_core", B.BackendCore);
    Json.metric(Key + ".backend_memory", B.BackendMemory);
  }

  print("Reading: on the in-order RISC-V cores the database scan loses "
        "most slots to bad speculation and memory; the x86 reference "
        "retires. The matmul kernel shifts the X60 toward backend-core "
        "(half-width vector unit + per-lane gathers) — the same "
        "diagnosis the Roofline model gives from outside.\n");
  Json.write();
  return 0;
}
