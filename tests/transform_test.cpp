//===- transform_test.cpp - Pass, cloning, extractor, instrumenter tests -------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegionInfo.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transform/Cloning.h"
#include "transform/CodeExtractor.h"
#include "transform/PassManager.h"
#include "transform/RooflineInstrumenter.h"
#include "transform/Scalar.h"
#include "support/Env.h"
#include "vm/Interpreter.h"
#include "workloads/Matmul.h"

#include <gtest/gtest.h>

using namespace mperf;
using namespace mperf::ir;
using namespace mperf::transform;

namespace {

std::unique_ptr<Module> parse(std::string_view Text) {
  auto MOr = parseModule(Text);
  EXPECT_TRUE(MOr.hasValue()) << (MOr ? "" : MOr.errorMessage());
  return std::move(*MOr);
}

const char *SumLoopText = R"(module m
global @OUT 8
func @sum(i64 %n) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, loop ]
  %acc = load i64, @OUT
  %acc2 = add i64 %acc, %i
  store i64 %acc2, @OUT
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  ret
}
)";

uint64_t runAndReadOut(Module &M, uint64_t N,
                       mperf::Environment *Env = nullptr) {
  vm::Interpreter Vm(M);
  // Bind roofline natives as no-ops driven by Env when present.
  bool Instrumented = Env && Env->getFlag("MPERF_ROOFLINE_INSTRUMENTED");
  Vm.registerNative(RooflineRuntimeNames::LoopBegin,
                    [](vm::Interpreter &, const std::vector<vm::RtValue> &) {
                      return vm::RtValue::ofInt(0);
                    });
  Vm.registerNative(RooflineRuntimeNames::LoopEnd,
                    [](vm::Interpreter &, const std::vector<vm::RtValue> &) {
                      return vm::RtValue();
                    });
  Vm.registerNative(RooflineRuntimeNames::IsInstrumented,
                    [Instrumented](vm::Interpreter &,
                                   const std::vector<vm::RtValue> &) {
                      return vm::RtValue::ofInt(Instrumented ? 1 : 0);
                    });
  Vm.registerNative(RooflineRuntimeNames::Count,
                    [](vm::Interpreter &, const std::vector<vm::RtValue> &) {
                      return vm::RtValue();
                    });
  auto R = Vm.run("sum", {vm::RtValue::ofInt(N)});
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
  return Vm.readI64(Vm.globalAddress("OUT"));
}

} // namespace

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

TEST(Cloning, ClonePreservesSemanticsAndIndependence) {
  auto M = parse(SumLoopText);
  Function *F = M->function("sum");
  Function *Clone = cloneFunction(*F, "sum_clone");
  EXPECT_FALSE(verifyModule(*M).isError());
  EXPECT_EQ(Clone->numBlocks(), F->numBlocks());
  EXPECT_EQ(Clone->instructionCount(), F->instructionCount());

  // The clone must not reference any instruction of the original.
  for (BasicBlock *BB : *Clone)
    for (Instruction *I : *BB)
      for (Value *Op : I->operands()) {
        if (auto *OpI = dyn_cast<Instruction>(Op)) {
          EXPECT_EQ(OpI->parent()->parent(), Clone);
        }
      }

  // And it computes the same thing.
  vm::Interpreter Vm(*M);
  auto R1 = Vm.run("sum", {vm::RtValue::ofInt(10)});
  ASSERT_TRUE(R1.hasValue());
  uint64_t After1 = Vm.readI64(Vm.globalAddress("OUT"));
  auto R2 = Vm.run("sum_clone", {vm::RtValue::ofInt(10)});
  ASSERT_TRUE(R2.hasValue());
  uint64_t After2 = Vm.readI64(Vm.globalAddress("OUT"));
  EXPECT_EQ(After1, 45u);
  EXPECT_EQ(After2 - After1, 45u);
}

//===----------------------------------------------------------------------===//
// DCE / constant folding
//===----------------------------------------------------------------------===//

TEST(Scalar, DceRemovesUnusedPureOps) {
  auto M = parse(R"(module m
func @f(i64 %a) -> i64 {
entry:
  %dead1 = add i64 %a, 1
  %dead2 = mul i64 %dead1, 2
  %live = add i64 %a, 5
  ret i64 %live
}
)");
  Function *F = M->function("f");
  ASSERT_EQ(F->entry()->size(), 4u);
  PassManager PM;
  PM.addPass(std::make_unique<DeadCodeElimination>());
  ASSERT_FALSE(PM.run(*M).isError());
  EXPECT_EQ(F->entry()->size(), 2u);
}

TEST(Scalar, DceKeepsSideEffects) {
  auto M = parse(R"(module m
global @G 8
func @f() -> void {
entry:
  %v = load i64, @G
  store i64 7, @G
  ret
}
)");
  Function *F = M->function("f");
  PassManager PM;
  PM.addPass(std::make_unique<DeadCodeElimination>());
  ASSERT_FALSE(PM.run(*M).isError());
  // The unused load is pure-ish but loads are conservatively kept.
  EXPECT_EQ(F->entry()->size(), 3u);
}

TEST(Scalar, ConstantFoldsArithmeticChains) {
  auto M = parse(R"(module m
func @f() -> i64 {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = sub i64 %b, 6
  ret i64 %c
}
)");
  Function *F = M->function("f");
  PassManager PM;
  PM.addPass(std::make_unique<ConstantFolding>());
  ASSERT_FALSE(PM.run(*M).isError());
  // Everything folds to ret 14.
  ASSERT_EQ(F->entry()->size(), 1u);
  Instruction *Ret = F->entry()->at(0);
  auto *C = dyn_cast<ConstantInt>(Ret->operand(0));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->zext(), 14u);
}

TEST(Scalar, FoldsIdentitiesAndSelects) {
  auto M = parse(R"(module m
func @f(i64 %x) -> i64 {
entry:
  %a = add i64 %x, 0
  %b = mul i64 %a, 1
  %s = select 1, i64 %b, 99
  ret i64 %s
}
)");
  Function *F = M->function("f");
  PassManager PM;
  PM.addPass(std::make_unique<ConstantFolding>());
  ASSERT_FALSE(PM.run(*M).isError());
  ASSERT_EQ(F->entry()->size(), 1u);
  EXPECT_EQ(F->entry()->at(0)->operand(0), F->arg(0));
}

TEST(Scalar, DivisionByZeroNotFolded) {
  auto M = parse(R"(module m
func @f() -> i64 {
entry:
  %a = udiv i64 10, 0
  ret i64 %a
}
)");
  Function *F = M->function("f");
  PassManager PM;
  PM.addPass(std::make_unique<ConstantFolding>());
  ASSERT_FALSE(PM.run(*M).isError());
  EXPECT_EQ(F->entry()->size(), 2u); // udiv survives
}

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

TEST(PassManagerTest, LogsAndVerifies) {
  auto M = parse(SumLoopText);
  PassManager PM;
  PM.addPass(std::make_unique<DeadCodeElimination>());
  PM.addPass(std::make_unique<ConstantFolding>());
  ASSERT_FALSE(PM.run(*M).isError());
  ASSERT_EQ(PM.log().size(), 2u);
  EXPECT_NE(PM.log()[0].find("dce"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CodeExtractor
//===----------------------------------------------------------------------===//

TEST(Extractor, OutlinesLoopAndPreservesSemantics) {
  auto M = parse(SumLoopText);
  Function *F = M->function("sum");
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.topLevelLoops().size(), 1u);
  auto Region = analysis::computeSESERegion(LI.topLevelLoops()[0]);
  ASSERT_TRUE(Region.has_value());

  auto ExtractedOr = extractLoopRegion(*F, *Region, "sum.loop0.outlined");
  ASSERT_TRUE(ExtractedOr.hasValue()) << ExtractedOr.errorMessage();
  EXPECT_FALSE(verifyModule(*M).isError()) << printModule(*M);

  // The inputs are the values the loop consumed from outside: %n.
  ASSERT_EQ(ExtractedOr->Inputs.size(), 1u);
  EXPECT_EQ(ExtractedOr->Inputs[0], F->arg(0));
  EXPECT_EQ(ExtractedOr->Outlined->name(), "sum.loop0.outlined");
  EXPECT_EQ(ExtractedOr->CallSite->callee(), ExtractedOr->Outlined);

  // The original function no longer contains a loop.
  analysis::DominatorTree DT2(*F);
  analysis::LoopInfo LI2(*F, DT2);
  EXPECT_EQ(LI2.numLoops(), 0u);

  EXPECT_EQ(runAndReadOut(*M, 10), 45u);
}

TEST(Extractor, RejectsSsaLiveOuts) {
  auto M = parse(R"(module m
func @f(i64 %n) -> i64 {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, loop ]
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  ret i64 %i.next
}
)");
  Function *F = M->function("f");
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  auto Region = analysis::computeSESERegion(LI.topLevelLoops()[0]);
  ASSERT_TRUE(Region.has_value());
  auto ExtractedOr = extractLoopRegion(*F, *Region, "f.loop0.outlined");
  ASSERT_FALSE(ExtractedOr.hasValue());
  EXPECT_NE(ExtractedOr.errorMessage().find("used outside"),
            std::string::npos);
  // Failure must leave the function untouched and valid.
  EXPECT_FALSE(verifyFunction(*F).isError());
  EXPECT_EQ(M->numFunctions(), 1u);
}

//===----------------------------------------------------------------------===//
// RooflineInstrumenter — the paper's §4.2 pipeline.
//===----------------------------------------------------------------------===//

TEST(Instrumenter, CreatesOutlinedAndInstrumentedPairs) {
  auto M = parse(SumLoopText);
  PassManager PM;
  auto InstrumenterPass = std::make_unique<RooflineInstrumenter>();
  RooflineInstrumenter *Instrumenter = InstrumenterPass.get();
  PM.addPass(std::move(InstrumenterPass));
  ASSERT_FALSE(PM.run(*M).isError());

  ASSERT_EQ(Instrumenter->loops().size(), 1u);
  const InstrumentedLoop &L = Instrumenter->loops()[0];
  EXPECT_EQ(L.ParentFunction, "sum");
  ASSERT_NE(M->function(L.OutlinedName), nullptr);
  ASSERT_NE(M->function(L.InstrumentedName), nullptr);
  // Runtime declarations exist.
  EXPECT_NE(M->function(RooflineRuntimeNames::LoopBegin), nullptr);
  EXPECT_NE(M->function(RooflineRuntimeNames::Count), nullptr);

  // The instrumented clone has counter calls; the outlined one does not.
  auto CountCalls = [&](Function *F) {
    unsigned N = 0;
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (I->opcode() == Opcode::Call &&
            I->callee()->name() == RooflineRuntimeNames::Count)
          ++N;
    return N;
  };
  EXPECT_GT(CountCalls(M->function(L.InstrumentedName)), 0u);
  EXPECT_EQ(CountCalls(M->function(L.OutlinedName)), 0u);
}

TEST(Instrumenter, BothPathsComputeTheSameResult) {
  auto M = parse(SumLoopText);
  PassManager PM;
  PM.addPass(std::make_unique<RooflineInstrumenter>());
  ASSERT_FALSE(PM.run(*M).isError());

  mperf::Environment Baseline;
  EXPECT_EQ(runAndReadOut(*M, 10, &Baseline), 45u);
  mperf::Environment Instrumented;
  Instrumented.set("MPERF_ROOFLINE_INSTRUMENTED", "1");
  EXPECT_EQ(runAndReadOut(*M, 10, &Instrumented), 45u);
}

TEST(Instrumenter, SkipsNonSeseLoops) {
  // A loop with two exits is not SESE; the pass must skip it cleanly.
  auto M = parse(R"(module m
global @OUT 8
func @f(i64 %n, i1 %c) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, latch ]
  cond_br %c, early, latch
early:
  ret
latch:
  %i.next = add i64 %i, 1
  %lc = icmp slt i64 %i.next, %n
  cond_br %lc, loop, exit
exit:
  ret
}
)");
  PassManager PM;
  auto InstrumenterPass = std::make_unique<RooflineInstrumenter>();
  RooflineInstrumenter *Instrumenter = InstrumenterPass.get();
  PM.addPass(std::move(InstrumenterPass));
  ASSERT_FALSE(PM.run(*M).isError());
  EXPECT_EQ(Instrumenter->loops().size(), 0u);
  EXPECT_EQ(Instrumenter->numSkipped(), 1u);
}

TEST(Instrumenter, MatmulNestExtractedOnce) {
  auto W = workloads::buildMatmul({32, 8, 1});
  PassManager PM;
  auto InstrumenterPass = std::make_unique<RooflineInstrumenter>();
  RooflineInstrumenter *Instrumenter = InstrumenterPass.get();
  PM.addPass(std::move(InstrumenterPass));
  ASSERT_FALSE(PM.run(*W.M).isError());
  // One top-level nest in matmul_kernel; main has no loops.
  ASSERT_EQ(Instrumenter->loops().size(), 1u);
  EXPECT_EQ(Instrumenter->loops()[0].ParentFunction, "matmul_kernel");
  EXPECT_FALSE(verifyModule(*W.M).isError());
}

TEST(Instrumenter, IdempotentOnSecondRun) {
  auto M = parse(SumLoopText);
  PassManager PM;
  auto P1 = std::make_unique<RooflineInstrumenter>();
  RooflineInstrumenter *Instrumenter = P1.get();
  PM.addPass(std::move(P1));
  ASSERT_FALSE(PM.run(*M).isError());
  size_t FunctionsAfterFirst = M->numFunctions();
  ASSERT_EQ(Instrumenter->loops().size(), 1u);

  // Running the pass again must not re-instrument outlined/instr clones.
  PassManager PM2;
  auto P2 = std::make_unique<RooflineInstrumenter>();
  RooflineInstrumenter *Second = P2.get();
  PM2.addPass(std::move(P2));
  ASSERT_FALSE(PM2.run(*M).isError());
  EXPECT_EQ(Second->loops().size(), 0u);
  EXPECT_EQ(M->numFunctions(), FunctionsAfterFirst);
}
