//===- Verifier.cpp - IR structural validation ------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <set>
#include <string>

using namespace mperf;
using namespace mperf::ir;

namespace {

/// Collects problems while walking one function.
class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F) {}

  Error run();

private:
  Error fail(const BasicBlock *BB, const Instruction *I, std::string Why) {
    std::string Msg = "verifier: in function '" + F.name() + "'";
    if (BB)
      Msg += ", block '" + BB->name() + "'";
    if (I && I->hasName())
      Msg += ", instruction '%" + I->name() + "'";
    else if (I)
      Msg += ", instruction '" + std::string(opcodeName(I->opcode())) + "'";
    Msg += ": " + Why;
    return Error(std::move(Msg));
  }

  Error checkBlockShape(const BasicBlock *BB);
  Error checkInstruction(const BasicBlock *BB, const Instruction *I);
  Error checkOperandsVisible(const BasicBlock *BB, const Instruction *I);

  const Function &F;
  std::set<const Value *> Defined;
};

} // namespace

Error FunctionVerifier::checkBlockShape(const BasicBlock *BB) {
  if (BB->empty())
    return fail(BB, nullptr, "block is empty (missing terminator)");
  for (size_t I = 0, E = BB->size(); I != E; ++I) {
    const Instruction *Inst = BB->at(I);
    bool IsLast = I + 1 == E;
    if (Inst->isTerminator() != IsLast)
      return fail(BB, Inst,
                  IsLast ? "last instruction is not a terminator"
                         : "terminator in the middle of a block");
  }
  // Phis must form a prefix.
  bool SeenNonPhi = false;
  for (const Instruction *Inst : *BB) {
    if (Inst->opcode() != Opcode::Phi) {
      SeenNonPhi = true;
      continue;
    }
    if (SeenNonPhi)
      return fail(BB, Inst, "phi after a non-phi instruction");
  }
  return Error::success();
}

Error FunctionVerifier::checkOperandsVisible(const BasicBlock *BB,
                                             const Instruction *I) {
  for (const Value *Op : I->operands()) {
    if (!Op)
      return fail(BB, I, "null operand");
    switch (Op->kind()) {
    case ValueKind::ConstantInt:
    case ValueKind::ConstantFP:
    case ValueKind::GlobalVariable:
    case ValueKind::Function:
      continue;
    case ValueKind::Argument:
      // Must be an argument of this function.
      {
        bool Found = false;
        for (unsigned A = 0, E = F.numArgs(); A != E; ++A)
          if (F.arg(A) == Op) {
            Found = true;
            break;
          }
        if (!Found)
          return fail(BB, I, "operand is an argument of another function");
      }
      continue;
    case ValueKind::Instruction: {
      const auto *OpInst = static_cast<const Instruction *>(Op);
      if (!OpInst->parent() || OpInst->parent()->parent() != &F)
        return fail(BB, I, "operand instruction not in this function");
      continue;
    }
    }
  }
  return Error::success();
}

Error FunctionVerifier::checkInstruction(const BasicBlock *BB,
                                         const Instruction *I) {
  if (Error E = checkOperandsVisible(BB, I))
    return E;

  auto WantOperands = [&](unsigned N) -> Error {
    if (I->numOperands() != N)
      return fail(BB, I,
                  "expected " + std::to_string(N) + " operands, found " +
                      std::to_string(I->numOperands()));
    return Error::success();
  };

  Opcode Op = I->opcode();
  if (I->isIntArith()) {
    if (Error E = WantOperands(2))
      return E;
    if (I->operand(0)->type() != I->operand(1)->type() ||
        I->operand(0)->type() != I->type())
      return fail(BB, I, "integer arithmetic type mismatch");
    if (!I->type()->scalarType()->isInteger())
      return fail(BB, I, "integer arithmetic on non-integer type");
    return Error::success();
  }
  if (Op == Opcode::FNeg) {
    if (Error E = WantOperands(1))
      return E;
    if (!I->type()->scalarType()->isFloat())
      return fail(BB, I, "fneg on non-float type");
    return Error::success();
  }
  if (Op == Opcode::Fma) {
    if (Error E = WantOperands(3))
      return E;
    if (!I->type()->scalarType()->isFloat())
      return fail(BB, I, "fma on non-float type");
    return Error::success();
  }
  if (I->isFloatArith()) {
    if (Error E = WantOperands(2))
      return E;
    if (I->operand(0)->type() != I->operand(1)->type() ||
        I->operand(0)->type() != I->type())
      return fail(BB, I, "float arithmetic type mismatch");
    if (!I->type()->scalarType()->isFloat())
      return fail(BB, I, "float arithmetic on non-float type");
    return Error::success();
  }

  switch (Op) {
  case Opcode::ICmp:
  case Opcode::FCmp:
    if (Error E = WantOperands(2))
      return E;
    if (I->operand(0)->type() != I->operand(1)->type())
      return fail(BB, I, "comparison operand types differ");
    if (!I->type()->isI1())
      return fail(BB, I, "comparison must produce i1");
    return Error::success();

  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::FPToSI:
  case Opcode::SIToFP:
  case Opcode::FPTrunc:
  case Opcode::FPExt:
    return WantOperands(1);

  case Opcode::Splat:
    if (Error E = WantOperands(1))
      return E;
    if (!I->type()->isVector() ||
        I->type()->elementType() != I->operand(0)->type())
      return fail(BB, I, "splat type mismatch");
    return Error::success();

  case Opcode::ExtractElement:
    if (Error E = WantOperands(2))
      return E;
    if (!I->operand(0)->type()->isVector())
      return fail(BB, I, "extractelement on non-vector");
    return Error::success();

  case Opcode::ReduceFAdd:
  case Opcode::ReduceAdd:
    if (Error E = WantOperands(1))
      return E;
    if (!I->operand(0)->type()->isVector())
      return fail(BB, I, "reduction on non-vector");
    if (I->operand(0)->type()->elementType() != I->type())
      return fail(BB, I, "reduction result type mismatch");
    return Error::success();

  case Opcode::Alloca:
    if (Error E = WantOperands(0))
      return E;
    if (I->allocaBytes() == 0)
      return fail(BB, I, "alloca of zero bytes");
    return Error::success();

  case Opcode::Load:
    if (I->numOperands() != 1 && I->numOperands() != 2)
      return fail(BB, I, "load takes a pointer and an optional stride");
    if (!I->operand(0)->type()->isPointer())
      return fail(BB, I, "load address is not a pointer");
    if (I->numOperands() == 2) {
      if (!I->type()->isVector())
        return fail(BB, I, "strided load must produce a vector");
      if (!I->operand(1)->type()->isInteger() ||
          I->operand(1)->type()->integerBits() != 64)
        return fail(BB, I, "load stride must be i64");
    }
    return Error::success();

  case Opcode::Store:
    if (I->numOperands() != 2 && I->numOperands() != 3)
      return fail(BB, I, "store takes value, pointer, optional stride");
    if (!I->operand(1)->type()->isPointer())
      return fail(BB, I, "store address is not a pointer");
    if (I->numOperands() == 3) {
      if (!I->operand(0)->type()->isVector())
        return fail(BB, I, "strided store must store a vector");
      if (!I->operand(2)->type()->isInteger() ||
          I->operand(2)->type()->integerBits() != 64)
        return fail(BB, I, "store stride must be i64");
    }
    return Error::success();

  case Opcode::PtrAdd:
    if (Error E = WantOperands(2))
      return E;
    if (!I->operand(0)->type()->isPointer() ||
        !I->operand(1)->type()->isInteger())
      return fail(BB, I, "ptradd requires (ptr, integer)");
    return Error::success();

  case Opcode::Br:
    if (I->numSuccessors() != 1)
      return fail(BB, I, "br must have one successor");
    return Error::success();

  case Opcode::CondBr:
    if (Error E = WantOperands(1))
      return E;
    if (!I->operand(0)->type()->isI1())
      return fail(BB, I, "cond_br condition must be i1");
    if (I->numSuccessors() != 2)
      return fail(BB, I, "cond_br must have two successors");
    return Error::success();

  case Opcode::Ret: {
    bool WantsValue = !F.returnType()->isVoid();
    if (WantsValue && I->numOperands() != 1)
      return fail(BB, I, "ret must carry a value in a non-void function");
    if (!WantsValue && I->numOperands() != 0)
      return fail(BB, I, "ret with value in a void function");
    if (WantsValue && I->operand(0)->type() != F.returnType())
      return fail(BB, I, "ret value type mismatch");
    return Error::success();
  }

  case Opcode::Call: {
    const Function *Callee = I->callee();
    if (!Callee)
      return fail(BB, I, "call without callee");
    if (I->numOperands() != Callee->paramTypes().size())
      return fail(BB, I, "call argument count mismatch");
    for (unsigned A = 0, E = I->numOperands(); A != E; ++A)
      if (I->operand(A)->type() != Callee->paramTypes()[A])
        return fail(BB, I, "call argument " + std::to_string(A) +
                               " type mismatch");
    if (I->type() != Callee->returnType())
      return fail(BB, I, "call result type mismatch");
    return Error::success();
  }

  case Opcode::Phi: {
    auto Preds = BB->predecessors();
    if (I->numOperands() != Preds.size())
      return fail(BB, I,
                  "phi has " + std::to_string(I->numOperands()) +
                      " incoming values but block has " +
                      std::to_string(Preds.size()) + " predecessors");
    for (const BasicBlock *Pred : Preds) {
      if (!I->incomingValueFor(Pred))
        return fail(BB, I,
                    "phi missing incoming value for predecessor '" +
                        Pred->name() + "'");
    }
    for (unsigned V = 0, E = I->numOperands(); V != E; ++V)
      if (I->operand(V)->type() != I->type())
        return fail(BB, I, "phi incoming value type mismatch");
    return Error::success();
  }

  case Opcode::Select:
    if (Error E = WantOperands(3))
      return E;
    if (!I->operand(0)->type()->isI1())
      return fail(BB, I, "select condition must be i1");
    if (I->operand(1)->type() != I->operand(2)->type() ||
        I->operand(1)->type() != I->type())
      return fail(BB, I, "select arm type mismatch");
    return Error::success();

  default:
    return Error::success();
  }
}

Error FunctionVerifier::run() {
  if (F.isDeclaration())
    return Error::success();
  for (const BasicBlock *BB : F) {
    if (Error E = checkBlockShape(BB))
      return E;
    for (const Instruction *I : *BB)
      if (Error E = checkInstruction(BB, I))
        return E;
  }
  return Error::success();
}

Error mperf::ir::verifyFunction(const Function &F) {
  return FunctionVerifier(F).run();
}

Error mperf::ir::verifyModule(const Module &M) {
  for (Function *F : M)
    if (Error E = verifyFunction(*F))
      return E;
  return Error::success();
}
