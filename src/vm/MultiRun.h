//===- MultiRun.h - Deterministic multi-instance interleaving --*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N vm::Instances of one shared Program "simultaneously" under a
/// deterministic round-robin interleave. Each instance executes on its
/// own host thread, but its retire-batch deliveries pass through a Gate
/// that blocks until it is that core's turn; a core holds the turn for a
/// quantum of retired IR ops (charged at batch granularity — batches are
/// at most Instance::RetireBufCap ops, so the granularity error is
/// bounded and, crucially, identical on every run), then hands it to the
/// next live core.
///
/// The turn index is the single serialization point: everything
/// downstream of a Gate — the core timing model, the PMU chain, and
/// through them any cluster-shared cache level (hw::SharedL2) — observes
/// cross-core events in an order fixed entirely by (program, quantum,
/// core count). Host scheduling decides only *when* a thread runs, never
/// *what order* shared simulation state is touched in, which is what
/// makes cluster profiles bit-identical at any --jobs count.
///
/// VM-private work (register file, simulated memory, call events) is NOT
/// serialized: a core that is not holding the turn can still execute
/// instructions right up to its next full retire ring. Only the
/// simulation of retirement waits.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_VM_MULTIRUN_H
#define MPERF_VM_MULTIRUN_H

#include "vm/Trace.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace mperf {
namespace vm {

/// The shared turnstile of one multi-instance run plus one Gate per
/// core. Create it, register each core's downstream consumers on its
/// gate, attach gate(i) to instance i, run the instances on their own
/// threads, and have each thread call finished(i) when its run returns
/// (on success or failure — a core that never reports finished blocks
/// the others forever).
class RoundRobin {
public:
  /// A per-core TraceConsumer that forwards to the core's downstream
  /// consumers only while holding the cluster turn.
  class Gate : public TraceConsumer {
  public:
    void onRetire(const RetiredOp &Op) override;
    void onRetireBatch(const RetiredOp *Ops, size_t Count,
                       const ir::Instruction *&RetireCursor) override;
    /// Columns pass through when any downstream walks them; queried per
    /// flush because downstreams are registered after the gate is
    /// attached to its instance.
    bool wantsRetireColumns() const override;
    void onRetireColumns(const RetireColumns &Cols,
                         const ir::Instruction *&RetireCursor) override;
    // Call events only touch per-core consumer state and are already in
    // deterministic per-core program order; they forward without taking
    // the turn so a waiting core can keep executing VM work.
    void onCallEnter(const ir::Function &F) override;
    void onCallExit(const ir::Function &F) override;

  private:
    friend class RoundRobin;
    RoundRobin *Parent = nullptr;
    unsigned Core = 0;
    std::vector<TraceConsumer *> Downstream;
    /// Retired ops left in the current quantum while holding the turn.
    uint64_t Budget = 0;
  };

  /// \p Quantum is in retired IR ops; 0 means "never preempt" (each
  /// core runs to completion in index order — still deterministic).
  RoundRobin(unsigned NumCores, uint64_t Quantum);

  /// The gate to attach to instance \p Core (addConsumer).
  Gate &gate(unsigned Core) { return Gates[Core]; }

  /// Registers \p C to receive core \p Core's trace through the gate.
  void addDownstream(unsigned Core, TraceConsumer *C) {
    Gates[Core].Downstream.push_back(C);
  }

  /// Core \p Core will retire nothing further: releases its turn and
  /// removes it from the rotation. Idempotent.
  void finished(unsigned Core);

  unsigned numCores() const { return static_cast<unsigned>(Gates.size()); }
  uint64_t quantum() const { return Quantum; }

private:
  /// Blocks until it is \p Core's turn; returns with the turn held.
  void acquire(unsigned Core);
  /// Charges \p Ops against the quantum; rotates to the next live core
  /// when it is spent.
  void charge(unsigned Core, uint64_t Ops);
  /// Advances Turn to the next not-Done core (lock held).
  void rotateLocked(unsigned From);

  std::mutex Mu;
  std::condition_variable Cv;
  unsigned Turn = 0;
  uint64_t Quantum;
  std::vector<Gate> Gates;
  std::vector<bool> Done;
};

/// Runs every body on its own thread and joins them all. Convenience
/// for cluster sessions and tests; bodies must not throw.
void runOnThreads(std::vector<std::function<void()>> Bodies);

} // namespace vm
} // namespace mperf

#endif // MPERF_VM_MULTIRUN_H
