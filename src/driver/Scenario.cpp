//===- Scenario.cpp - Workload registry and platform/workload specs ------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "driver/Scenario.h"

#include "support/Format.h"
#include "workloads/Compile.h"
#include "workloads/Matmul.h"
#include "workloads/Microbench.h"
#include "workloads/SqliteLike.h"

#include <algorithm>
#include <cctype>
#include <cmath>

using namespace mperf;
using namespace mperf::driver;

std::string Scenario::tag(const std::string &Key) const {
  const std::string Prefix = Key + "=";
  for (const std::string &T : Tags)
    if (startsWith(T, Prefix))
      return T.substr(Prefix.size());
  return "";
}

std::string mperf::driver::platformKey(const hw::Platform &P) {
  const std::string &N = P.CoreName;
  if (N.find("X60") != std::string::npos)
    return "x60";
  if (N.find("C910") != std::string::npos)
    return "c910";
  if (N.find("C906") != std::string::npos)
    return "c906";
  if (N.find("U74") != std::string::npos)
    return "u74";
  if (N.find("i5") != std::string::npos)
    return "i5";
  std::string Key;
  for (char C : N)
    if (std::isalnum(static_cast<unsigned char>(C)))
      Key.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(C))));
  return Key.empty() ? "unknown" : Key;
}

//===----------------------------------------------------------------------===//
// Workload registry
//
// Each compiler is a pure (target, vectorize) -> Program step: it
// builds a fresh Module (own Context, own globals), vectorizes when
// asked, and lowers it into an immutable shared Program. The
// SweepRunner's ProgramCache keys on (name, variant, vector signature)
// and calls each compiler exactly once per distinct key. Scales are
// the bench-tree scales shrunk enough that a full (5 platforms x 5
// workloads) matrix stays interactive.
//===----------------------------------------------------------------------===//

namespace {

/// The vector target of one compile request: null when the knob is off
/// (workload compilers treat null and vector-less targets identically).
const transform::TargetInfo *vectorTargetFor(const transform::TargetInfo &T,
                                             bool Vectorize) {
  return Vectorize ? &T : nullptr;
}

WorkloadDesc sqliteWorkload(unsigned Scale) {
  WorkloadDesc D;
  D.Name = "sqlite";
  D.Description = "sqlite3-like database engine scan (Table 2 / Fig. 3)";
  D.Variant = "s" + std::to_string(Scale);
  // One notch up from the original sweep scale (16/12/12): the micro-op
  // engine made simulation cheap enough that the sweep is build-bound,
  // not run-bound. --scale grows the query count linearly from here.
  workloads::SqliteLikeConfig C;
  C.NumPages = 24;
  C.CellsPerPage = 16;
  C.NumQueries = 16 * Scale;
  D.Compile = [C](const transform::TargetInfo &T,
                  bool Vectorize) -> Expected<CompiledWorkload> {
    auto POr = workloads::compileSqliteLike(C, vectorTargetFor(T, Vectorize));
    if (!POr)
      return makeError<CompiledWorkload>(POr.errorMessage());
    CompiledWorkload W;
    W.Prog = std::move(POr->Prog);
    W.Args = {vm::RtValue::ofInt(C.NumQueries)};
    return W;
  };
  return D;
}

WorkloadDesc matmulWorkload(unsigned Scale) {
  WorkloadDesc D;
  D.Name = "matmul";
  D.Description = "tiled SGEMM kernel of section 5.2 (Fig. 4)";
  D.Variant = "s" + std::to_string(Scale);
  // Base n one notch above the original 48; --scale grows total MACs
  // roughly linearly by scaling n with the cube root, snapped to a
  // tile multiple so the kernel stays evenly tiled.
  workloads::MatmulConfig C{64, 16, 0x5eed};
  if (Scale > 1) {
    double Grown = C.N * std::cbrt(static_cast<double>(Scale));
    unsigned Snapped =
        static_cast<unsigned>((Grown / C.Tile) + 0.5) * C.Tile;
    C.N = Snapped > C.N ? Snapped : C.N;
  }
  D.Compile = [C](const transform::TargetInfo &T,
                  bool Vectorize) -> Expected<CompiledWorkload> {
    auto POr = workloads::compileMatmul(C, vectorTargetFor(T, Vectorize));
    if (!POr)
      return makeError<CompiledWorkload>(POr.errorMessage());
    CompiledWorkload W;
    W.Prog = POr->Prog;
    // Input-data setup is separate from compilation: the hook captures
    // the compiled artifact by value and regenerates A/B/C in each
    // session's private Instance memory.
    workloads::MatmulProgram MP = std::move(*POr);
    W.Setup = [MP](vm::Instance &Vm) {
      MP.initialize(Vm);
      workloads::bindClock(Vm, [] { return 0.0; });
    };
    return W;
  };
  return D;
}

WorkloadDesc triadWorkload(unsigned Scale) {
  WorkloadDesc D;
  D.Name = "triad";
  D.Description = "STREAM triad bandwidth probe (section 5.2 ceilings)";
  D.Variant = "s" + std::to_string(Scale);
  D.Compile = [Scale](const transform::TargetInfo &T,
                      bool Vectorize) -> Expected<CompiledWorkload> {
    auto POr =
        workloads::compileTriad(8192, 24 * Scale, vectorTargetFor(T, Vectorize));
    if (!POr)
      return makeError<CompiledWorkload>(POr.errorMessage());
    CompiledWorkload W;
    W.Prog = std::move(POr->Prog);
    return W;
  };
  return D;
}

WorkloadDesc memsetWorkload(unsigned Scale) {
  WorkloadDesc D;
  D.Name = "memset";
  D.Description = "streaming-store memset, the memory-roof probe";
  D.Variant = "s" + std::to_string(Scale);
  D.Compile = [Scale](const transform::TargetInfo &T,
                      bool Vectorize) -> Expected<CompiledWorkload> {
    auto POr = workloads::compileMemset(128 * 1024, 8 * Scale,
                                        vectorTargetFor(T, Vectorize));
    if (!POr)
      return makeError<CompiledWorkload>(POr.errorMessage());
    CompiledWorkload W;
    W.Prog = std::move(POr->Prog);
    return W;
  };
  return D;
}

WorkloadDesc peakflopsWorkload(unsigned Scale) {
  WorkloadDesc D;
  D.Name = "peakflops";
  D.Description = "independent FMA chains, the compute-roof probe "
                  "(explicit IR; ignores the vector knob by design)";
  D.Variant = "s" + std::to_string(Scale);
  // peakflops is the one workload that must not go through the
  // vectorizer: it probes FMA throughput with hand-built chains
  // (Microbench.h), so the Vectorize knob deliberately does nothing —
  // and every scenario shares one cached build.
  D.VectorIndependent = true;
  D.Compile = [Scale](const transform::TargetInfo &,
                      bool) -> Expected<CompiledWorkload> {
    auto POr = workloads::compilePeakFlops(4, 40000 * Scale);
    if (!POr)
      return makeError<CompiledWorkload>(POr.errorMessage());
    CompiledWorkload W;
    W.Prog = std::move(POr->Prog);
    return W;
  };
  return D;
}

} // namespace

std::vector<WorkloadDesc> mperf::driver::standardWorkloads(unsigned Scale) {
  if (Scale == 0)
    Scale = 1;
  return {sqliteWorkload(Scale), matmulWorkload(Scale),
          triadWorkload(Scale), memsetWorkload(Scale),
          peakflopsWorkload(Scale)};
}

//===----------------------------------------------------------------------===//
// Spec resolution ("all" | comma-separated tokens)
//===----------------------------------------------------------------------===//

namespace {

std::string lowered(std::string_view Text) {
  std::string Out(Text);
  std::transform(Out.begin(), Out.end(), Out.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return Out;
}

} // namespace

Expected<std::vector<hw::Platform>>
mperf::driver::selectPlatforms(const std::string &Spec) {
  std::vector<hw::Platform> Db = hw::allPlatforms();
  if (Spec.empty() || lowered(Spec) == "all")
    return Db;
  std::vector<hw::Platform> Out;
  for (std::string_view Token : split(Spec, ',')) {
    std::string Want = lowered(trim(Token));
    if (Want.empty())
      continue;
    bool Found = false;
    for (const hw::Platform &P : Db) {
      if (platformKey(P) == Want ||
          lowered(P.CoreName).find(Want) != std::string::npos) {
        Out.push_back(P);
        Found = true;
        break;
      }
    }
    if (!Found)
      return makeError<std::vector<hw::Platform>>(
          "unknown platform '" + Want + "' (try: all, u74, c906, c910, "
          "x60, i5)");
  }
  if (Out.empty())
    return makeError<std::vector<hw::Platform>>(
        "platform spec '" + Spec + "' selected nothing");
  return Out;
}

Expected<std::vector<hw::Cluster>>
mperf::driver::selectClusters(const std::string &Spec) {
  std::vector<hw::Cluster> Db = hw::allClusters();
  if (Spec.empty() || lowered(Spec) == "all")
    return Db;
  std::vector<hw::Cluster> Out;
  for (std::string_view Token : split(Spec, ',')) {
    std::string Want = lowered(trim(Token));
    if (Want.empty())
      continue;
    const hw::Cluster *C = hw::clusterByKey(Db, Want);
    if (!C) {
      std::string Known;
      for (const hw::Cluster &K : Db)
        Known += (Known.empty() ? "" : ", ") + K.Key;
      return makeError<std::vector<hw::Cluster>>(
          "unknown cluster '" + Want + "' (known: all, " + Known + ")");
    }
    Out.push_back(*C);
  }
  if (Out.empty())
    return makeError<std::vector<hw::Cluster>>(
        "cluster spec '" + Spec + "' selected nothing");
  return Out;
}

Expected<std::vector<WorkloadDesc>>
mperf::driver::selectWorkloads(const std::string &Spec, unsigned Scale) {
  std::vector<WorkloadDesc> Db = standardWorkloads(Scale);
  if (Spec.empty() || lowered(Spec) == "all")
    return Db;
  std::vector<WorkloadDesc> Out;
  for (std::string_view Token : split(Spec, ',')) {
    std::string Want = lowered(trim(Token));
    if (Want.empty())
      continue;
    bool Found = false;
    for (const WorkloadDesc &W : Db) {
      if (W.Name == Want) {
        Out.push_back(W);
        Found = true;
        break;
      }
    }
    if (!Found) {
      std::string Known;
      for (const WorkloadDesc &W : Db)
        Known += (Known.empty() ? "" : ", ") + W.Name;
      return makeError<std::vector<WorkloadDesc>>(
          "unknown workload '" + Want + "' (known: all, " + Known + ")");
    }
  }
  if (Out.empty())
    return makeError<std::vector<WorkloadDesc>>(
        "workload spec '" + Spec + "' selected nothing");
  return Out;
}
