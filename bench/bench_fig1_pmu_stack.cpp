//===- bench_fig1_pmu_stack.cpp - Reproduces the paper's Fig. 1 -----------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Fig. 1: "Architecture of PMU counters software layer" — an
// architecture diagram in the paper. Here the diagram is printed and
// then demonstrated live: a profiling session runs and the actual
// layer-interaction trace (perf_event_open -> SBI ecalls -> machine-level
// register writes) is dumped from the firmware's operation log.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ir/Parser.h"
#include "kernel/PerfEvent.h"
#include "support/Format.h"

using namespace bench;
using namespace mperf;
using namespace mperf::hw;

int main() {
  print("Fig. 1: Architecture of the PMU software layer\n\n");
  print("  +--------------------------------------------------+\n"
        "  | user space:   perf / miniperf                    |\n"
        "  |   perf_event_open(), mmap ring buffer            |\n"
        "  +------------------------v-------------------------+\n"
        "  | kernel (S-mode): perf_event subsystem            |\n"
        "  |   RISC-V PMU driver, overflow IRQ handler        |\n"
        "  +------------------------v-------------------------+\n"
        "  | firmware (M-mode): OpenSBI PMU extension         |\n"
        "  |   counter config/start/stop via ecall            |\n"
        "  +------------------------v-------------------------+\n"
        "  | hardware: mcycle minstret mhpmcounter3..31       |\n"
        "  |   mhpmevent3..31  mcountinhibit  mcounteren      |\n"
        "  +--------------------------------------------------+\n\n");

  // Live trace on the X60: open the workaround group, run briefly.
  Platform P = spacemitX60();
  auto MOr = ir::parseModule(R"(module tiny
global @OUT 8
func @main() -> void {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i.next, loop ]
  store i64 %i, @OUT
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, 20000
  cond_br %c, loop, exit
exit:
  ret
}
)");
  vm::Interpreter Vm(**MOr);
  CoreModel Core(P.Core, P.Cache);
  Pmu ThePmu(P.PmuCaps);
  Core.setEventSink([&ThePmu](const EventDeltas &D) { ThePmu.advance(D); });
  sbi::SbiPmu Sbi(ThePmu, Core);
  kernel::PerfEventSubsystem Perf(P, ThePmu, Sbi, Core, Vm);
  Vm.addConsumer(&Core);

  miniperf::GroupPlan Plan = miniperf::planCyclesInstructionsGroup(P, 10000);
  int Leader = -1;
  for (const miniperf::PlannedEvent &E : Plan.Events) {
    auto FdOr = Perf.open(E.Attr, Leader);
    if (FdOr && Leader < 0)
      Leader = *FdOr;
  }
  (void)Perf.enable(Leader);
  (void)Vm.run("main");
  (void)Perf.disable(Leader);

  print("Live layer-interaction trace on " + P.CoreName + " (" +
        std::to_string(Sbi.numEcalls()) + " ecalls, " +
        std::to_string(Perf.numInterrupts()) + " overflow interrupts):\n");
  unsigned Shown = 0;
  for (const std::string &Op : Sbi.opLog()) {
    print("  [M-mode] " + Op + "\n");
    if (++Shown >= 14) {
      print("  ... (" + std::to_string(Sbi.opLog().size() - Shown) +
            " more)\n");
      break;
    }
  }
  print("\nsamples recorded: " +
        std::to_string(Perf.ringBuffer().samples().size()) + "\n");

  BenchReport Json("fig1_pmu_stack");
  Json.metric("sbi_ecalls", Sbi.numEcalls());
  Json.metric("overflow_interrupts", Perf.numInterrupts());
  Json.metric("samples",
              static_cast<uint64_t>(Perf.ringBuffer().samples().size()));
  Json.metric("oplog_entries", static_cast<uint64_t>(Sbi.opLog().size()));
  Json.note("leader", Plan.LeaderDescription);
  Json.write();
  return 0;
}
