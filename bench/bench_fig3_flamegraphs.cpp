//===- bench_fig3_flamegraphs.cpp - Reproduces the paper's Fig. 3 ---------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Fig. 3: flame graphs for the sqlite3 benchmark — four panels: SpacemiT
// X60 cycles/instructions (collected through the grouping workaround)
// and Intel Core i5-1135G7 cycles/instructions (direct sampling). ASCII
// renderings are printed; SVG files are written next to the binary.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "miniperf/FlameGraph.h"

#include <fstream>

using namespace bench;
using namespace mperf;
using namespace mperf::miniperf;

static void emit(const std::string &Panel, const FlameGraph &FG,
                 const std::string &SvgPath) {
  print("---- " + Panel + " ----\n");
  print(FG.renderAscii(96));
  std::ofstream Svg(SvgPath);
  Svg << FG.renderSvg();
  print("(svg written to " + SvgPath + ")\n\n");
}

int main() {
  print("Fig. 3: Flame graphs for the sqlite3-like benchmark\n\n");

  BenchReport Json("fig3_flamegraphs");
  for (const hw::Platform &P :
       {hw::spacemitX60(), hw::intelI5_1135G7()}) {
    Profile R = profileSqlite(P, 10000);
    std::string Tag =
        P.Id.Mvendorid == 0x8086 ? "i5_1135g7" : "spacemit_x60";

    FlameGraph Cycles =
        FlameGraph::fromSamples(R.Samples, R.counterFd("cycles"), "cycles");
    emit(P.CoreName + ", cycles" +
             (R.UsedWorkaround ? "  [via u_mode_cycle leader group]" : ""),
         Cycles, "fig3_" + Tag + "_cycles.svg");

    FlameGraph Instr = FlameGraph::fromSamples(
        R.Samples, R.counterFd("instructions"), "instructions");
    emit(P.CoreName + ", instructions retired", Instr,
         "fig3_" + Tag + "_instructions.svg");

    Json.metric("samples." + Tag, static_cast<uint64_t>(R.Samples.size()));
    Json.metric("cycles_weight." + Tag, Cycles.totalWeight());
    Json.metric("instructions_weight." + Tag, Instr.totalWeight());
    Json.metric("vdbe_leaf_share." + Tag,
                Cycles.leafShare("sqlite3VdbeExec"));
  }

  print("Reading the panels the way the paper does: both platforms are\n"
        "dominated by the same engine functions; frame widths differ by\n"
        "the per-ISA instruction counts, and the instructions-retired\n"
        "panels allow cross-platform comparison without frequency bias.\n");
  Json.write();
  return 0;
}
