//===- vectorizer_test.cpp - Loop vectorizer tests -----------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transform/LoopVectorizer.h"
#include "transform/PassManager.h"
#include "vm/Interpreter.h"
#include "workloads/Matmul.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

using namespace mperf;
using namespace mperf::ir;
using namespace mperf::transform;

namespace {

std::unique_ptr<Module> parse(std::string_view Text) {
  auto MOr = parseModule(Text);
  EXPECT_TRUE(MOr.hasValue()) << (MOr ? "" : MOr.errorMessage());
  return std::move(*MOr);
}

/// Applies the vectorizer for \p Target; returns loops vectorized.
unsigned vectorize(Module &M, const TargetInfo &Target) {
  PassManager PM;
  auto Pass = std::make_unique<LoopVectorizer>(Target);
  LoopVectorizer *Raw = Pass.get();
  PM.addPass(std::move(Pass));
  Error E = PM.run(M);
  EXPECT_FALSE(E.isError()) << E.message();
  return Raw->numVectorized();
}

/// True if any instruction in \p M has a vector type.
bool hasVectorOps(Module &M) {
  for (Function *F : M)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (I->type()->isVector())
          return true;
  return false;
}

const char *SaxpyText = R"(module m
global @X 4096
global @Y 4096
func @saxpy(i64 %n, f32 %a) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, loop ]
  %off = shl i64 %i, 2
  %xp = ptradd ptr @X, %off
  %yp = ptradd ptr @Y, %off
  %x = load f32, %xp
  %y = load f32, %yp
  %r = fma f32 %x, %a, %y
  store f32 %r, %yp
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  ret
}
)";

/// Dot product with an FMA reduction.
const char *DotText = R"(module m
global @X 4096
global @Y 4096
global @OUT 8
func @dot(i64 %n) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, loop ]
  %acc = phi f32 [ 0.0, ph ], [ %acc.next, loop ]
  %off = shl i64 %i, 2
  %xp = ptradd ptr @X, %off
  %yp = ptradd ptr @Y, %off
  %x = load f32, %xp
  %y = load f32, %yp
  %acc.next = fma f32 %x, %y, %acc
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  store f32 %acc.next, @OUT
  ret
}
)";

void fillF32(vm::Interpreter &Vm, const std::string &Global, unsigned Count,
             float Base) {
  std::vector<float> Data(Count);
  for (unsigned I = 0; I != Count; ++I)
    Data[I] = Base + 0.25f * static_cast<float>(I % 17);
  Vm.writeMemory(Vm.globalAddress(Global), Data.data(), Count * 4);
}

} // namespace

TEST(Vectorizer, NoOpWithoutVectorTarget) {
  auto M = parse(SaxpyText);
  EXPECT_EQ(vectorize(*M, TargetInfo::rv64gc()), 0u);
  EXPECT_FALSE(hasVectorOps(*M));
}

TEST(Vectorizer, WidensUnitStrideLoop) {
  auto M = parse(SaxpyText);
  EXPECT_EQ(vectorize(*M, TargetInfo::rv64gcv(256)), 1u);
  EXPECT_TRUE(hasVectorOps(*M));
  EXPECT_FALSE(verifyModule(*M).isError()) << printModule(*M);
}

TEST(Vectorizer, VectorPathMatchesScalarResults) {
  auto Scalar = parse(SaxpyText);
  auto Vector = parse(SaxpyText);
  ASSERT_EQ(vectorize(*Vector, TargetInfo::x86Avx2()), 1u);

  const unsigned N = 256; // divisible by VF=8 -> vector path taken
  auto RunOne = [&](Module &M) {
    vm::Interpreter Vm(M);
    fillF32(Vm, "X", N, 1.0f);
    fillF32(Vm, "Y", N, 2.0f);
    auto R = Vm.run("saxpy",
                    {vm::RtValue::ofInt(N), vm::RtValue::ofFp(1.5)});
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
    std::vector<float> Y(N);
    Vm.readMemory(Vm.globalAddress("Y"), Y.data(), N * 4);
    return Y;
  };
  auto YS = RunOne(*Scalar);
  auto YV = RunOne(*Vector);
  for (unsigned I = 0; I != N; ++I)
    EXPECT_FLOAT_EQ(YS[I], YV[I]) << "element " << I;
}

TEST(Vectorizer, ScalarFallbackWhenTripCountIndivisible) {
  auto Scalar = parse(SaxpyText);
  auto Vector = parse(SaxpyText);
  ASSERT_EQ(vectorize(*Vector, TargetInfo::x86Avx2()), 1u);

  const unsigned N = 253; // not divisible by 8 -> versioned scalar path
  auto RunOne = [&](Module &M) {
    vm::Interpreter Vm(M);
    fillF32(Vm, "X", 256, 3.0f);
    fillF32(Vm, "Y", 256, -1.0f);
    auto R = Vm.run("saxpy",
                    {vm::RtValue::ofInt(N), vm::RtValue::ofFp(0.5)});
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
    std::vector<float> Y(256);
    Vm.readMemory(Vm.globalAddress("Y"), Y.data(), 256 * 4);
    return Y;
  };
  auto YS = RunOne(*Scalar);
  auto YV = RunOne(*Vector);
  for (unsigned I = 0; I != 256; ++I)
    EXPECT_FLOAT_EQ(YS[I], YV[I]) << "element " << I;
}

TEST(Vectorizer, ReductionLoopVectorizesAndMatches) {
  auto Scalar = parse(DotText);
  auto Vector = parse(DotText);
  ASSERT_EQ(vectorize(*Vector, TargetInfo::rv64gcv(256)), 1u);
  EXPECT_FALSE(verifyModule(*Vector).isError()) << printModule(*Vector);

  const unsigned N = 128;
  auto RunOne = [&](Module &M) {
    vm::Interpreter Vm(M);
    fillF32(Vm, "X", N, 0.5f);
    fillF32(Vm, "Y", N, 1.25f);
    auto R = Vm.run("dot", {vm::RtValue::ofInt(N)});
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
    return Vm.readF32(Vm.globalAddress("OUT"));
  };
  double S = RunOne(*Scalar);
  double V = RunOne(*Vector);
  // Different accumulation order: allow small relative error.
  EXPECT_NEAR(V, S, std::abs(S) * 1e-4);
}

TEST(Vectorizer, RejectsRecurrences) {
  // acc = fma(acc, c1, c2) is a recurrence, not a reduction.
  auto M = parse(R"(module m
global @OUT 8
func @rec(i64 %n) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, loop ]
  %acc = phi f32 [ 1.0, ph ], [ %acc.next, loop ]
  %acc.next = fma f32 %acc, 1.5, 0.25
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  store f32 %acc.next, @OUT
  ret
}
)");
  EXPECT_EQ(vectorize(*M, TargetInfo::x86Avx2()), 0u);
}

TEST(Vectorizer, RejectsCallsInBody) {
  auto M = parse(R"(module m
declare func @ext(f32 %x) -> f32
global @X 4096
func @f(i64 %n) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %i = phi i64 [ 0, ph ], [ %i.next, loop ]
  %off = shl i64 %i, 2
  %p = ptradd ptr @X, %off
  %x = load f32, %p
  %y = call f32 @ext(f32 %x)
  store f32 %y, %p
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  ret
}
)");
  EXPECT_EQ(vectorize(*M, TargetInfo::x86Avx2()), 0u);
}

TEST(Vectorizer, StridedLoadGetsStrideOperand) {
  // B[k*n + j] style column access: stride is 4*n, known only at run
  // time; the vectorizer must emit a strided load.
  auto M = parse(R"(module m
global @B 65536
global @OUT 8
func @col(i64 %n, i64 %j) -> void {
entry:
  br ph
ph:
  br loop
loop:
  %k = phi i64 [ 0, ph ], [ %k.next, loop ]
  %acc = phi f32 [ 0.0, ph ], [ %acc.next, loop ]
  %row = mul i64 %k, %n
  %idx = add i64 %row, %j
  %off = shl i64 %idx, 2
  %p = ptradd ptr @B, %off
  %b = load f32, %p
  %acc.next = fadd f32 %acc, %b
  %k.next = add i64 %k, 1
  %c = icmp slt i64 %k.next, %n
  cond_br %c, loop, exit
exit:
  store f32 %acc.next, @OUT
  ret
}
)");
  ASSERT_EQ(vectorize(*M, TargetInfo::rv64gcv(256)), 1u);
  bool FoundStrided = false;
  for (Function *F : *M)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (I->opcode() == Opcode::Load && I->hasVectorStrideOperand())
          FoundStrided = true;
  EXPECT_TRUE(FoundStrided) << printModule(*M);

  // Semantics: sum of column j over k=0..n-1.
  vm::Interpreter Vm(*M);
  const unsigned N = 32;
  std::vector<float> B(N * N);
  for (unsigned K = 0; K != N; ++K)
    for (unsigned J = 0; J != N; ++J)
      B[K * N + J] = static_cast<float>(K) + 0.5f;
  Vm.writeMemory(Vm.globalAddress("B"), B.data(), B.size() * 4);
  auto R = Vm.run("col", {vm::RtValue::ofInt(N), vm::RtValue::ofInt(3)});
  ASSERT_TRUE(R.hasValue()) << R.errorMessage();
  double Expected = 0;
  for (unsigned K = 0; K != N; ++K)
    Expected += K + 0.5;
  EXPECT_NEAR(Vm.readF32(Vm.globalAddress("OUT")), Expected, 1e-3);
}

TEST(Vectorizer, MemsetStoreOfInvariantWidens) {
  auto Bench = workloads::buildMemset(4096, 1);
  EXPECT_EQ(vectorize(*Bench.M, TargetInfo::rv64gcv(256)), 1u);
  EXPECT_TRUE(hasVectorOps(*Bench.M));
  vm::Interpreter Vm(*Bench.M);
  auto R = Vm.run("main");
  EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
}

TEST(Vectorizer, MatmulInnerLoopVectorizes) {
  auto W = workloads::buildMatmul({32, 8, 1});
  EXPECT_EQ(vectorize(*W.M, TargetInfo::rv64gcv(256)), 1u);
  EXPECT_FALSE(verifyModule(*W.M).isError());

  // Numerics still match the host reference.
  vm::Interpreter Vm(*W.M);
  W.initialize(Vm);
  auto R = Vm.run("matmul_kernel",
                  {vm::RtValue::ofInt(Vm.globalAddress("A")),
                   vm::RtValue::ofInt(Vm.globalAddress("B")),
                   vm::RtValue::ofInt(Vm.globalAddress("C")),
                   vm::RtValue::ofInt(32)});
  ASSERT_TRUE(R.hasValue()) << R.errorMessage();
  EXPECT_LT(W.verify(Vm), 1e-3);
}

//===----------------------------------------------------------------------===//
// Property sweep: saxpy correctness across lane widths and sizes.
//===----------------------------------------------------------------------===//

class VectorizerSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(VectorizerSweep, SaxpyMatchesScalar) {
  auto [VectorBits, N] = GetParam();
  auto Scalar = parse(SaxpyText);
  auto Vector = parse(SaxpyText);
  TargetInfo Target = TargetInfo::rv64gcv(VectorBits);
  ASSERT_EQ(vectorize(*Vector, Target), 1u);

  auto RunOne = [&](Module &M) {
    vm::Interpreter Vm(M);
    fillF32(Vm, "X", 1024, 0.75f);
    fillF32(Vm, "Y", 1024, -0.5f);
    auto R = Vm.run("saxpy",
                    {vm::RtValue::ofInt(N), vm::RtValue::ofFp(2.25)});
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
    std::vector<float> Y(1024);
    Vm.readMemory(Vm.globalAddress("Y"), Y.data(), 1024 * 4);
    return Y;
  };
  auto YS = RunOne(*Scalar);
  auto YV = RunOne(*Vector);
  for (unsigned I = 0; I != 1024; ++I)
    ASSERT_FLOAT_EQ(YS[I], YV[I]) << "element " << I;
}

INSTANTIATE_TEST_SUITE_P(
    LaneAndSizeSweep, VectorizerSweep,
    ::testing::Combine(::testing::Values(128u, 256u, 512u),
                       ::testing::Values(64u, 96u, 100u, 1000u, 1024u)));
