//===- bench_table1_platforms.cpp - Reproduces the paper's Table 1 -------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Table 1: "Comparison of available RISC-V hardware capabilities". The
// capability matrix is printed from the platform database, then the
// "overflow interrupt" row is *verified live* by sweeping one sampling
// workload across every platform with the scenario-sweep driver: cores
// whose row says "No" must produce zero samples, everyone else must
// sample (the X60 through its grouping workaround).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/ScenarioMatrix.h"
#include "driver/SweepRunner.h"
#include "support/Table.h"

using namespace bench;
using namespace mperf;
using namespace mperf::driver;
using namespace mperf::hw;

int main() {
  print("Table 1: Comparison of available RISC-V hardware capabilities\n");
  print("(paper: Table 1 columns plus the x86 reference and the C906 "
        "sweep column)\n\n");

  std::vector<Platform> Platforms = allPlatforms();

  TextTable T;
  std::vector<std::string> Header = {"Core"};
  std::vector<std::string> Board = {"Board"};
  std::vector<std::string> Ooo = {"Out-of-Order"};
  std::vector<std::string> Rvv = {"RVV version"};
  std::vector<std::string> Ovf = {"Overflow interrupt support"};
  std::vector<std::string> Linux = {"Upstream Linux support"};
  for (const Platform &P : Platforms) {
    Header.push_back(P.CoreName);
    Board.push_back(P.BoardName);
    Ooo.push_back(P.OutOfOrder ? "Yes" : "No");
    Rvv.push_back(P.RvvVersion);
    Ovf.push_back(P.OverflowSupport);
    Linux.push_back(P.UpstreamLinux);
  }
  T.addHeader(Header);
  T.addRow(Board);
  T.addRow(Ooo);
  T.addRow(Rvv);
  T.addRow(Ovf);
  T.addRow(Linux);
  print(T.render());

  // Live verification: the same sampling scenario on every platform,
  // run concurrently by the sweep driver.
  std::vector<Scenario> Scenarios = ScenarioMatrix()
                                        .addPlatforms(Platforms)
                                        .addWorkloads(*selectWorkloads("triad"))
                                        .addSamplePeriod(30000)
                                        .build();
  SweepOptions Opts;
  Opts.Jobs = 4;
  SweepReport Report = SweepRunner(Opts).run(Scenarios);

  print("\nLive verification of the overflow-interrupt row (one sampling "
        "scenario per core, " + std::to_string(Report.Jobs) +
        " concurrent jobs):\n");
  TextTable V;
  V.addHeader({"Core", "claimed", "observed strategy", "samples",
               "verdict"});
  bool AllConsistent = true;
  for (size_t I = 0; I != Report.Results.size(); ++I) {
    const ScenarioResult &R = Report.Results[I];
    const Platform &P = Platforms[I];
    std::string Strategy = R.Failed ? "run failed"
                           : !R.Profile.SamplingAvailable
                               ? "counting only"
                           : R.Profile.UsedWorkaround
                               ? "grouping workaround"
                               : "direct sampling";
    bool ClaimsSampling = P.OverflowSupport != "No";
    bool Consistent =
        !R.Failed && ClaimsSampling == (R.NumSamples > 0);
    AllConsistent = AllConsistent && Consistent;
    V.addRow({P.CoreName, P.OverflowSupport, Strategy,
              std::to_string(R.NumSamples),
              Consistent ? "consistent" : "MISMATCH"});
  }
  print(V.render());
  print(AllConsistent
            ? "\nEvery capability claim matches the simulated PMU stack.\n"
            : "\nMISMATCH between Table 1 claims and the live sweep!\n");

  BenchReport Json("table1_platforms");
  Json.metric("num_platforms", static_cast<uint64_t>(Platforms.size()));
  Json.metric("sweep_failures", static_cast<uint64_t>(Report.numFailures()));
  Json.metric("claims_consistent", static_cast<uint64_t>(AllConsistent));
  for (size_t I = 0; I != Report.Results.size(); ++I)
    Json.metric("samples." + platformKey(Platforms[I]),
                Report.Results[I].NumSamples);
  Json.addTable("capabilities", T);
  Json.addTable("live_verification", V);
  Json.write();
  return AllConsistent ? 0 : 1;
}
