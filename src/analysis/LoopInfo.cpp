//===- LoopInfo.cpp - Natural loop detection ---------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace mperf;
using namespace mperf::analysis;
using namespace mperf::ir;

std::vector<BasicBlock *> Loop::latches() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *Pred : Header->predecessors())
    if (contains(Pred))
      Result.push_back(Pred);
  return Result;
}

BasicBlock *Loop::preheader() const {
  BasicBlock *Candidate = nullptr;
  for (BasicBlock *Pred : Header->predecessors()) {
    if (contains(Pred))
      continue;
    if (Candidate)
      return nullptr; // more than one outside predecessor
    Candidate = Pred;
  }
  if (!Candidate)
    return nullptr;
  // A preheader must branch only to the header.
  auto Succs = Candidate->successors();
  if (Succs.size() != 1 || Succs[0] != Header)
    return nullptr;
  return Candidate;
}

std::vector<BasicBlock *> Loop::exitBlocks() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ) &&
          std::find(Result.begin(), Result.end(), Succ) == Result.end())
        Result.push_back(Succ);
  return Result;
}

std::vector<BasicBlock *> Loop::exitingBlocks() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ)) {
        Result.push_back(BB);
        break;
      }
  return Result;
}

unsigned Loop::depth() const {
  unsigned D = 1;
  for (const Loop *P = Parent; P; P = P->parent())
    ++D;
  return D;
}

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  (void)F; // The CFG is reached through DT, which was built over F.
  // Find back edges (Latch -> Header where Header dominates Latch) and
  // collect each loop's body by walking predecessors from the latch.
  std::map<BasicBlock *, Loop *> HeaderToLoop;

  for (BasicBlock *BB : DT.reversePostOrder()) {
    for (BasicBlock *Succ : BB->successors()) {
      if (!DT.dominates(Succ, BB))
        continue;
      // BB -> Succ is a back edge; Succ is a header.
      Loop *L = nullptr;
      auto It = HeaderToLoop.find(Succ);
      if (It != HeaderToLoop.end()) {
        L = It->second;
      } else {
        AllLoops.push_back(std::make_unique<Loop>(Succ));
        L = AllLoops.back().get();
        HeaderToLoop[Succ] = L;
      }
      // Reverse flood fill from the latch, stopping at the header.
      L->Blocks.insert(Succ);
      std::vector<BasicBlock *> Work;
      if (L->Blocks.insert(BB).second)
        Work.push_back(BB);
      while (!Work.empty()) {
        BasicBlock *Cur = Work.back();
        Work.pop_back();
        for (BasicBlock *Pred : Cur->predecessors()) {
          if (!DT.isReachable(Pred))
            continue;
          if (L->Blocks.insert(Pred).second)
            Work.push_back(Pred);
        }
      }
    }
  }

  // Establish nesting: loop A is a child of the smallest loop B != A whose
  // block set contains A's header.
  for (auto &LPtr : AllLoops) {
    Loop *L = LPtr.get();
    Loop *BestParent = nullptr;
    for (auto &CandPtr : AllLoops) {
      Loop *Cand = CandPtr.get();
      if (Cand == L || !Cand->contains(L->header()))
        continue;
      if (!BestParent || Cand->Blocks.size() < BestParent->Blocks.size())
        BestParent = Cand;
    }
    L->Parent = BestParent;
  }
  for (auto &LPtr : AllLoops) {
    Loop *L = LPtr.get();
    if (L->Parent)
      L->Parent->SubLoops.push_back(L);
    else
      TopLevel.push_back(L);
  }

  // Keep deterministic program order: order top-level loops and subloops
  // by their header's position in RPO.
  std::map<const BasicBlock *, unsigned> Order;
  unsigned N = 0;
  for (BasicBlock *BB : DT.reversePostOrder())
    Order[BB] = N++;
  auto ByHeader = [&Order](const Loop *A, const Loop *B) {
    return Order.at(A->header()) < Order.at(B->header());
  };
  std::sort(TopLevel.begin(), TopLevel.end(), ByHeader);
  for (auto &LPtr : AllLoops)
    std::sort(LPtr->SubLoops.begin(), LPtr->SubLoops.end(), ByHeader);
}

std::vector<Loop *> LoopInfo::loopsInPreorder() const {
  std::vector<Loop *> Result;
  std::vector<Loop *> Work(TopLevel.rbegin(), TopLevel.rend());
  while (!Work.empty()) {
    Loop *L = Work.back();
    Work.pop_back();
    Result.push_back(L);
    for (auto It = L->subLoops().rbegin(); It != L->subLoops().rend(); ++It)
      Work.push_back(*It);
  }
  return Result;
}

Loop *LoopInfo::loopFor(const BasicBlock *BB) const {
  Loop *Best = nullptr;
  for (const auto &LPtr : AllLoops) {
    if (!LPtr->contains(BB))
      continue;
    if (!Best || LPtr->Blocks.size() < Best->Blocks.size())
      Best = LPtr.get();
  }
  return Best;
}
