//===- Microbench.h - Ceiling-probing microbenchmarks ----------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The microbenchmarks used to establish Roofline ceilings (§5.2):
///  - memset: streaming stores, measures sustainable bytes/cycle (the
///    paper uses Olaf Bernstein's rvv memset results, ~3.16 B/cyc on the
///    X60);
///  - STREAM triad: a[i] = b[i] + s * c[i], the classic bandwidth probe;
///  - peak FLOPs: an unrolled chain of independent FMAs on registers,
///    measuring the achievable compute roof.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_WORKLOADS_MICROBENCH_H
#define MPERF_WORKLOADS_MICROBENCH_H

#include "ir/Module.h"
#include "support/Error.h"
#include "vm/Interpreter.h"

#include <memory>

namespace mperf {
namespace transform {
struct TargetInfo;
} // namespace transform

namespace workloads {

/// A built microbenchmark: `main()` runs the kernel over the buffers.
struct Microbench {
  std::unique_ptr<ir::Module> M;
  /// Bytes the kernel touches per full pass.
  uint64_t BytesPerPass = 0;
  /// FLOPs per full pass.
  uint64_t FlopsPerPass = 0;
  uint64_t Passes = 1;

  uint64_t totalBytes() const { return BytesPerPass * Passes; }
  uint64_t totalFlops() const { return FlopsPerPass * Passes; }
};

/// memset of \p Bytes bytes (as i64 stores), repeated \p Passes times.
Microbench buildMemset(uint64_t Bytes, uint64_t Passes);

/// STREAM triad over three f32 arrays of \p Elems elements.
Microbench buildTriad(uint64_t Elems, uint64_t Passes);

/// \p Chains independent f32 FMA chains of \p Lanes lanes each (1 =
/// scalar), \p Iters iterations. Built with explicit vector IR — it
/// probes the machine's FMA throughput, so it must not depend on the
/// vectorizer. Results are stored so nothing folds away.
Microbench buildPeakFlops(unsigned Chains, uint64_t Iters, unsigned Lanes = 1);

/// The immutable compiled form of a microbenchmark probe: shareable
/// across threads/scenarios; carries the same work-accounting facts as
/// the Microbench it was compiled from.
struct MicrobenchProgram {
  std::shared_ptr<const vm::Program> Prog;
  uint64_t BytesPerPass = 0;
  uint64_t FlopsPerPass = 0;
  uint64_t Passes = 1;

  uint64_t totalBytes() const { return BytesPerPass * Passes; }
  uint64_t totalFlops() const { return FlopsPerPass * Passes; }
};

/// Pure compile steps of the three probes (build + optional vectorize
/// + verify + lower); deterministic in their arguments, hence
/// cacheable. compilePeakFlops takes no target: that probe is explicit
/// vector IR and must not run through the vectorizer.
Expected<MicrobenchProgram>
compileMemset(uint64_t Bytes, uint64_t Passes,
              const transform::TargetInfo *VectorTarget = nullptr);
Expected<MicrobenchProgram>
compileTriad(uint64_t Elems, uint64_t Passes,
             const transform::TargetInfo *VectorTarget = nullptr);
Expected<MicrobenchProgram> compilePeakFlops(unsigned Chains, uint64_t Iters,
                                             unsigned Lanes = 1);

} // namespace workloads
} // namespace mperf

#endif // MPERF_WORKLOADS_MICROBENCH_H
