//===- DominatorTree.cpp - Dominator tree analysis --------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"

#include <algorithm>
#include <set>

using namespace mperf;
using namespace mperf::analysis;
using namespace mperf::ir;

DominatorTree::DominatorTree(const Function &F) : F(F) {
  assert(!F.isDeclaration() && "dominator tree over a declaration");

  // Depth-first post order from the entry.
  std::vector<BasicBlock *> PostOrder;
  std::set<const BasicBlock *> Visited;
  // Iterative DFS with explicit stack of (block, next successor index).
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  BasicBlock *Entry = F.entry();
  Stack.push_back({Entry, 0});
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    auto Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *Succ = Succs[NextSucc++];
      if (Visited.insert(Succ).second)
        Stack.push_back({Succ, 0});
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }

  for (unsigned I = 0, E = PostOrder.size(); I != E; ++I)
    PostOrderIndex[PostOrder[I]] = I;
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());

  // Iterative dataflow from Cooper-Harvey-Kennedy.
  auto Intersect = [this](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (PostOrderIndex.at(A) < PostOrderIndex.at(B))
        A = IDom.at(A);
      while (PostOrderIndex.at(B) < PostOrderIndex.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  IDom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!isReachable(Pred) || !IDom.count(Pred))
          continue;
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end())
    return nullptr;
  // The entry's table entry points at itself; expose null instead.
  return It->second == BB ? nullptr : It->second;
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return false;
    Cur = It->second;
  }
}

bool DominatorTree::strictlyDominates(const BasicBlock *A,
                                      const BasicBlock *B) const {
  return A != B && dominates(A, B);
}
