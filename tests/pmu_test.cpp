//===- pmu_test.cpp - PMU register model and SBI layer tests -------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "hw/Platform.h"
#include "hw/Pmu.h"
#include "sbi/SbiPmu.h"

#include <gtest/gtest.h>

using namespace mperf;
using namespace mperf::hw;

namespace {

EventDeltas cycles(double N, PrivMode Mode = PrivMode::User) {
  EventDeltas D;
  D.Cycles = N;
  D.Instret = N / 2;
  D.Mode = Mode;
  return D;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pmu register model
//===----------------------------------------------------------------------===//

TEST(PmuTest, FixedCountersCountFromReset) {
  Pmu P(spacemitX60().PmuCaps);
  P.advance(cycles(100));
  EXPECT_EQ(P.readCounter(Pmu::MCycleIdx), 100u);
  EXPECT_EQ(P.readCounter(Pmu::MInstretIdx), 50u);
}

TEST(PmuTest, McountinhibitStopsCounting) {
  Pmu P(spacemitX60().PmuCaps);
  P.setCounting(Pmu::MCycleIdx, false);
  P.advance(cycles(100));
  EXPECT_EQ(P.readCounter(Pmu::MCycleIdx), 0u);
  P.setCounting(Pmu::MCycleIdx, true);
  P.advance(cycles(10));
  EXPECT_EQ(P.readCounter(Pmu::MCycleIdx), 10u);
}

TEST(PmuTest, EventSelectorProgramsHpmCounter) {
  Pmu P(spacemitX60().PmuCaps);
  ASSERT_TRUE(P.writeEventSelector(3, VE_U_MODE_CYCLE));
  EXPECT_EQ(P.counterEvent(3), EventKind::UModeCycles);
  P.setCounting(3, true);
  P.advance(cycles(40, PrivMode::User));
  P.advance(cycles(60, PrivMode::Supervisor));
  EXPECT_EQ(P.readCounter(3), 40u); // only U-mode cycles
}

TEST(PmuTest, UnknownEventCodeRejected) {
  Pmu P(spacemitX60().PmuCaps);
  EXPECT_FALSE(P.writeEventSelector(3, 0x7777));
  EXPECT_FALSE(P.writeEventSelector(0, VE_U_MODE_CYCLE)); // mcycle is fixed
}

TEST(PmuTest, ModeCycleCountersPartitionCycles) {
  Pmu P(spacemitX60().PmuCaps);
  P.writeEventSelector(3, VE_U_MODE_CYCLE);
  P.writeEventSelector(4, VE_S_MODE_CYCLE);
  P.writeEventSelector(5, VE_M_MODE_CYCLE);
  for (unsigned I = 3; I <= 5; ++I)
    P.setCounting(I, true);
  P.advance(cycles(10, PrivMode::User));
  P.advance(cycles(20, PrivMode::Supervisor));
  P.advance(cycles(30, PrivMode::Machine));
  EXPECT_EQ(P.readCounter(3), 10u);
  EXPECT_EQ(P.readCounter(4), 20u);
  EXPECT_EQ(P.readCounter(5), 30u);
  // Their sum equals mcycle.
  EXPECT_EQ(P.readCounter(Pmu::MCycleIdx), 60u);
}

TEST(PmuTest, X60CannotArmOverflowOnStandardCounters) {
  // The documented hardware limitation (§3.3).
  Pmu P(spacemitX60().PmuCaps);
  EXPECT_FALSE(P.armOverflow(Pmu::MCycleIdx, 1000));
  EXPECT_FALSE(P.armOverflow(Pmu::MInstretIdx, 1000));
  P.writeEventSelector(3, VE_U_MODE_CYCLE);
  EXPECT_TRUE(P.armOverflow(3, 1000));
}

TEST(PmuTest, C910ArmsOverflowOnStandardCounters) {
  Pmu P(theadC910().PmuCaps);
  EXPECT_TRUE(P.armOverflow(Pmu::MCycleIdx, 1000));
  EXPECT_TRUE(P.armOverflow(Pmu::MInstretIdx, 1000));
}

TEST(PmuTest, U74HasNoOverflowAtAll) {
  Pmu P(sifiveU74().PmuCaps);
  EXPECT_FALSE(P.armOverflow(Pmu::MCycleIdx, 1000));
  P.writeEventSelector(3, VE_L1D_MISS);
  EXPECT_FALSE(P.armOverflow(3, 1000));
}

TEST(PmuTest, OverflowFiresAtEachPeriod) {
  Pmu P(theadC910().PmuCaps);
  unsigned Fired = 0;
  P.setOverflowHandler([&](unsigned Idx) {
    EXPECT_EQ(Idx, Pmu::MCycleIdx);
    ++Fired;
  });
  ASSERT_TRUE(P.armOverflow(Pmu::MCycleIdx, 100));
  for (int I = 0; I < 10; ++I)
    P.advance(cycles(50));
  // 500 cycles with period 100 -> 5 overflows.
  EXPECT_EQ(Fired, 5u);
}

TEST(PmuTest, OverflowDisarmAndRewrite) {
  Pmu P(theadC910().PmuCaps);
  unsigned Fired = 0;
  P.setOverflowHandler([&](unsigned) { ++Fired; });
  ASSERT_TRUE(P.armOverflow(Pmu::MCycleIdx, 100));
  P.advance(cycles(150));
  EXPECT_EQ(Fired, 1u);
  ASSERT_TRUE(P.armOverflow(Pmu::MCycleIdx, 0)); // disarm
  P.advance(cycles(1000));
  EXPECT_EQ(Fired, 1u);
}

//===----------------------------------------------------------------------===//
// SBI PMU extension
//===----------------------------------------------------------------------===//

TEST(SbiTest, EcallsCostMachineModeCycles) {
  Platform P = spacemitX60();
  Pmu ThePmu(P.PmuCaps);
  CoreModel Core(P.Core, P.Cache);
  Core.setEventSink([&ThePmu](const EventDeltas &D) { ThePmu.advance(D); });
  // Route a counter at m_mode cycles to observe firmware time.
  ThePmu.writeEventSelector(10, VE_M_MODE_CYCLE);
  ThePmu.setCounting(10, true);

  sbi::SbiPmu Sbi(ThePmu, Core, sbi::SbiConfig{400});
  auto CounterOr = Sbi.counterConfigMatching(VE_U_MODE_CYCLE);
  ASSERT_TRUE(CounterOr.hasValue()) << CounterOr.errorMessage();
  EXPECT_EQ(Sbi.numEcalls(), 1u);
  EXPECT_EQ(ThePmu.readCounter(10), 400u); // one ecall of M-mode work
  EXPECT_EQ(Core.mode(), PrivMode::User);  // restored afterwards
}

TEST(SbiTest, CounterLifecycle) {
  Platform P = spacemitX60();
  Pmu ThePmu(P.PmuCaps);
  CoreModel Core(P.Core, P.Cache);
  sbi::SbiPmu Sbi(ThePmu, Core);

  auto IdxOr = Sbi.counterConfigMatching(VE_U_MODE_CYCLE);
  ASSERT_TRUE(IdxOr.hasValue());
  unsigned Idx = *IdxOr;
  EXPECT_GE(Idx, Pmu::FirstHpmIdx);

  EXPECT_FALSE(Sbi.counterStart(Idx, 0).isError());
  EXPECT_TRUE(ThePmu.isCounting(Idx));
  EXPECT_FALSE(Sbi.counterStop(Idx).isError());
  EXPECT_FALSE(ThePmu.isCounting(Idx));

  auto ReadOr = Sbi.counterRead(Idx);
  ASSERT_TRUE(ReadOr.hasValue());

  EXPECT_FALSE(Sbi.counterRelease(Idx).isError());
  // Released counters can be handed out again.
  auto Again = Sbi.counterConfigMatching(VE_L1D_MISS);
  ASSERT_TRUE(Again.hasValue());
  EXPECT_EQ(*Again, Idx);
}

TEST(SbiTest, ArmOverflowPropagatesHardwareLimitation) {
  Platform P = spacemitX60();
  Pmu ThePmu(P.PmuCaps);
  CoreModel Core(P.Core, P.Cache);
  sbi::SbiPmu Sbi(ThePmu, Core);
  // L1D miss counters exist but cannot sample on the X60.
  auto IdxOr = Sbi.counterConfigMatching(VE_L1D_MISS);
  ASSERT_TRUE(IdxOr.hasValue());
  Error E = Sbi.counterArmOverflow(*IdxOr, 1000);
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.message().find("overflow"), std::string::npos);
}

TEST(SbiTest, CounterExhaustion) {
  Platform P = sifiveU74(); // only 2 hpm counters
  Pmu ThePmu(P.PmuCaps);
  CoreModel Core(P.Core, P.Cache);
  sbi::SbiPmu Sbi(ThePmu, Core);
  EXPECT_TRUE(Sbi.counterConfigMatching(VE_L1D_MISS).hasValue());
  EXPECT_TRUE(Sbi.counterConfigMatching(VE_L2_MISS).hasValue());
  auto Third = Sbi.counterConfigMatching(VE_BRANCH_MISS);
  ASSERT_FALSE(Third.hasValue());
  EXPECT_NE(Third.errorMessage().find("no free hpm counter"),
            std::string::npos);
}

TEST(SbiTest, DelegationWritesMcounteren) {
  Platform P = spacemitX60();
  Pmu ThePmu(P.PmuCaps);
  CoreModel Core(P.Core, P.Cache);
  sbi::SbiPmu Sbi(ThePmu, Core);
  Sbi.delegateCounters(0x7);
  EXPECT_EQ(ThePmu.counterEnable(), 0x7u);
  // The op log records the interaction for the Fig. 1 trace.
  ASSERT_FALSE(Sbi.opLog().empty());
  EXPECT_NE(Sbi.opLog().back().find("mcounteren"), std::string::npos);
}
