//===- RegionInfo.cpp - SESE region checks -----------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegionInfo.h"

using namespace mperf;
using namespace mperf::analysis;
using namespace mperf::ir;

std::optional<SESERegion> mperf::analysis::computeSESERegion(Loop *L) {
  SESERegion Region;
  Region.TheLoop = L;

  Region.Entry = L->preheader();
  if (!Region.Entry)
    return std::nullopt;

  // Every block of the loop other than the header must have all its
  // predecessors inside the loop (no side entries).
  for (BasicBlock *BB : L->blocks()) {
    if (BB == L->header())
      continue;
    for (BasicBlock *Pred : BB->predecessors())
      if (!L->contains(Pred))
        return std::nullopt;
  }

  // Exactly one exit block.
  auto Exits = L->exitBlocks();
  if (Exits.size() != 1)
    return std::nullopt;
  Region.Exit = Exits.front();

  // The exit block must not be reachable except through the loop or
  // through control flow after it; for extraction it is enough that the
  // exit is not the function entry and every in-loop exit edge targets it
  // (already guaranteed by Exits.size()==1).
  Region.Blocks = L->blocks();
  return Region;
}
