//===- BenchUtil.h - Shared helpers for the bench binaries ------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common plumbing used by the per-table/figure bench binaries: the
/// default workload scales (paper workloads scaled down to simulator
/// budgets; see EXPERIMENTS.md) and compile/profile one-liners.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_BENCH_BENCHUTIL_H
#define MPERF_BENCH_BENCHUTIL_H

#include "miniperf/Hotspots.h"
#include "miniperf/Session.h"
#include "roofline/MachineModel.h"
#include "roofline/PmuEstimator.h"
#include "roofline/TwoPhase.h"
#include "transform/LoopVectorizer.h"
#include "transform/PassManager.h"
#include "transform/RooflineInstrumenter.h"
#include "support/Format.h"
#include "support/JSON.h"
#include "support/Table.h"
#include "workloads/Matmul.h"
#include "workloads/SqliteLike.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace bench {

using namespace mperf;

//===----------------------------------------------------------------------===//
// Minimal timing harness
//
// The benches measure the simulation substrate itself in host wall-clock
// time, so a small repeat-until-stable loop is all that is needed; no
// external benchmark framework is used anywhere in the repo.
//===----------------------------------------------------------------------===//

/// Defeats dead-code elimination of a benchmark result.
template <typename T> inline void doNotOptimize(const T &Value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(&Value) : "memory");
#else
  volatile const T *Sink = &Value;
  (void)Sink;
#endif
}

/// What measure() reports for one benchmark case.
struct BenchTiming {
  uint64_t Iterations = 0;
  double TotalSeconds = 0.0;
  double SecondsPerIter = 0.0;
};

/// Calls \p F once untimed as a warm-up, then repeatedly until at least
/// \p MinSeconds of wall time and \p MinIters calls have accumulated,
/// and reports the mean time per call.
template <typename Fn>
inline BenchTiming measure(Fn &&F, double MinSeconds = 0.3,
                           uint64_t MinIters = 3) {
  using Clock = std::chrono::steady_clock;
  F();
  BenchTiming T;
  const Clock::time_point Start = Clock::now();
  do {
    F();
    ++T.Iterations;
    T.TotalSeconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
  } while (T.TotalSeconds < MinSeconds || T.Iterations < MinIters);
  T.SecondsPerIter = T.TotalSeconds / static_cast<double>(T.Iterations);
  return T;
}

/// Renders a per-call time with a unit fitting its magnitude.
inline std::string formatSecondsPerIter(double Seconds) {
  if (Seconds < 1e-6)
    return fixed(Seconds * 1e9, 1) + " ns";
  if (Seconds < 1e-3)
    return fixed(Seconds * 1e6, 1) + " us";
  if (Seconds < 1.0)
    return fixed(Seconds * 1e3, 2) + " ms";
  return fixed(Seconds, 3) + " s";
}

/// The sqlite workload at the scale the benches use (the paper's run
/// retires ~3.6e9 instructions on real silicon; the simulated runs are
/// scaled to ~5e7 retired IR ops — one notch up from the original
/// ~2e7 now that the micro-op engine carries the cost — and report the
/// same shapes).
inline workloads::SqliteLikeConfig sqliteScale() {
  workloads::SqliteLikeConfig C;
  C.NumPages = 80;
  C.CellsPerPage = 28;
  C.NumQueries = 64;
  return C;
}

/// The matmul kernel at bench scale (paper: n large on real silicon;
/// one notch up from the original n=128).
inline workloads::MatmulConfig matmulScale() {
  return workloads::MatmulConfig{192, 64, 1};
}

/// Profiles the sqlite workload on \p P with sampling.
inline miniperf::Profile profileSqlite(const hw::Platform &P,
                                       uint64_t Period = 20000) {
  auto C = sqliteScale();
  auto W = workloads::buildSqliteLike(C);
  miniperf::SessionOptions Opts;
  Opts.SamplePeriod = Period;
  miniperf::Session S(P, Opts);
  auto ROr = S.profile(*W.M, "main", {vm::RtValue::ofInt(C.NumQueries)});
  if (!ROr) {
    std::fprintf(stderr, "error: %s\n", ROr.errorMessage().c_str());
    std::exit(1);
  }
  return *ROr;
}

/// Vectorizes + instruments matmul for \p P; returns workload and loops.
struct PreparedMatmul {
  workloads::MatmulWorkload W;
  std::vector<transform::InstrumentedLoop> Loops;
};

inline PreparedMatmul prepareMatmul(const hw::Platform &P,
                                    workloads::MatmulConfig MC) {
  PreparedMatmul R;
  R.W = workloads::buildMatmul(MC);
  transform::PassManager PM;
  PM.addPass(std::make_unique<transform::LoopVectorizer>(P.Target));
  auto IP = std::make_unique<transform::RooflineInstrumenter>();
  transform::RooflineInstrumenter *Raw = IP.get();
  PM.addPass(std::move(IP));
  if (Error E = PM.run(*R.W.M)) {
    std::fprintf(stderr, "error: %s\n", E.message().c_str());
    std::exit(1);
  }
  R.Loops = Raw->loops();
  return R;
}

/// Runs the two-phase Roofline analysis of a prepared matmul on \p P.
inline roofline::TwoPhaseResult twoPhase(const hw::Platform &P,
                                         PreparedMatmul &R) {
  roofline::TwoPhaseDriver Driver(P);
  workloads::MatmulWorkload *W = &R.W;
  Driver.setSetupHook([W](vm::Interpreter &Vm) {
    W->initialize(Vm);
    workloads::bindClock(Vm, [] { return 0.0; });
  });
  auto ROr = Driver.analyze(*R.W.M, R.Loops, "main");
  if (!ROr) {
    std::fprintf(stderr, "error: %s\n", ROr.errorMessage().c_str());
    std::exit(1);
  }
  return *ROr;
}

inline void print(const std::string &Text) {
  std::fputs(Text.c_str(), stdout);
}

//===----------------------------------------------------------------------===//
// Machine-readable bench baselines
//
// Every bench binary also writes `BENCH_<name>.json` next to its text
// output, so CI can diff metric values against committed baselines (the
// perf gate; see tools/bench-diff.cpp). Keys are stable identifiers;
// tables carry the same cells the text report prints.
//
// The gate contract: everything under "metrics" must be deterministic
// (simulated cycles, counts, model-derived ratios) — CI fails on >2%
// drift against bench/baselines/. Host-wall-clock-derived numbers
// (ops/s, seconds, speedups over host time) go under "host_metrics"
// via hostMetric(); they are reported for trend inspection but never
// gate.
//===----------------------------------------------------------------------===//

/// Collects named metrics and tables and writes the bench JSON file.
class BenchReport {
public:
  explicit BenchReport(std::string Name) : Name(std::move(Name)) {}

  void metric(const std::string &Key, double Value) {
    Metrics.push_back({Key, Entry::Double, Value, 0, ""});
  }
  void metric(const std::string &Key, uint64_t Value) {
    Metrics.push_back({Key, Entry::Unsigned, 0, Value, ""});
  }
  void metric(const std::string &Key, int Value) {
    metric(Key, static_cast<uint64_t>(Value));
  }
  void note(const std::string &Key, const std::string &Value) {
    Metrics.push_back({Key, Entry::Text, 0, 0, Value});
  }
  /// A host-time-derived (non-deterministic) metric: reported in the
  /// JSON under "host_metrics", advisory-only for the perf gate.
  void hostMetric(const std::string &Key, double Value) {
    HostMetrics.push_back({Key, Entry::Double, Value, 0, ""});
  }
  void addTable(const std::string &Key, const TextTable &T) {
    Tables.emplace_back(Key, T);
  }

  /// Serializes the report ("miniperf-bench-report/v2"; v2 split the
  /// advisory host-time numbers out of the gated "metrics" object).
  std::string toJson() const {
    JsonWriter W;
    W.beginObject();
    W.key("schema");
    W.string("miniperf-bench-report/v2");
    W.key("bench");
    W.string(Name);
    W.key("metrics");
    W.beginObject();
    for (const Entry &E : Metrics) {
      W.key(E.Key);
      switch (E.Kind) {
      case Entry::Double:
        W.number(E.D);
        break;
      case Entry::Unsigned:
        W.number(E.U);
        break;
      case Entry::Text:
        W.string(E.S);
        break;
      }
    }
    W.endObject();
    W.key("host_metrics");
    W.beginObject();
    for (const Entry &E : HostMetrics) {
      W.key(E.Key);
      W.number(E.D);
    }
    W.endObject();
    W.key("tables");
    W.beginArray();
    for (const auto &[Key, T] : Tables) {
      W.beginObject();
      W.key("name");
      W.string(Key);
      W.key("header");
      W.beginArray();
      for (const std::string &Cell : T.header())
        W.string(Cell);
      W.endArray();
      W.key("rows");
      W.beginArray();
      for (const std::vector<std::string> &Row : T.rows()) {
        W.beginArray();
        for (const std::string &Cell : Row)
          W.string(Cell);
        W.endArray();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.str();
  }

  /// Writes BENCH_<name>.json into the working directory and reports
  /// the path on stdout. Returns false (with a stderr note) on I/O
  /// failure so benches keep their text output either way.
  bool write() const {
    const std::string Path = "BENCH_" + Name + ".json";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return false;
    }
    Out << toJson() << "\n";
    print("\n(json baseline written to " + Path + ")\n");
    return true;
  }

private:
  struct Entry {
    std::string Key;
    enum Kind { Double, Unsigned, Text } Kind;
    double D;
    uint64_t U;
    std::string S;
  };
  std::string Name;
  std::vector<Entry> Metrics;
  std::vector<Entry> HostMetrics;
  std::vector<std::pair<std::string, TextTable>> Tables;
};

} // namespace bench

#endif // MPERF_BENCH_BENCHUTIL_H
