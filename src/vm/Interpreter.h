//===- Interpreter.h - Compatibility alias for vm::Instance ----*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Historic entry point of the VM. The interpreter was split into the
/// immutable vm::Program artifact (vm/Program.h: verified module, slot
/// form, eagerly lowered micro-ops, memory layout) and the mutable
/// per-run vm::Instance (vm/Instance.h: memory, registers, trace ring,
/// statistics). `Interpreter` remains as an alias for Instance so the
/// long-standing `Interpreter Vm(M); Vm.run(...)` idiom — and every
/// native handler signature written against it — keeps working.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_VM_INTERPRETER_H
#define MPERF_VM_INTERPRETER_H

#include "vm/Instance.h"

namespace mperf {
namespace vm {

using Interpreter = Instance;

} // namespace vm
} // namespace mperf

#endif // MPERF_VM_INTERPRETER_H
