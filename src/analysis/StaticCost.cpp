//===- StaticCost.cpp - Static performance prediction --------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// The engine mirrors the dynamic pipeline piece by piece so the two can
// disagree only where the static side must approximate:
//
//   op classes        vm::classifyOp         (shared, cannot drift)
//   issue costs       CoreModel::costFor     (re-derived verbatim below)
//   branch predictor  2-bit + loop predictor (closed-form warm-up counts)
//   cache             CacheSim geometry      (footprint/reuse-distance model,
//                                             incl. set-conflict thrash)
//   bandwidth floor   DramBytesPerCycle      (per reuse-loop cold tour, plus
//                                             a whole-run residual)
//
// Anything not provable goes through fail(), which poisons the whole
// result with a reason instead of guessing.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticCost.h"

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "hw/Platform.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "vm/Program.h"
#include "vm/Trace.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>

using namespace mperf;
using namespace mperf::analysis;
using namespace mperf::ir;

namespace {

/// Mirror of CoreModel::costFor over static op facts (class, lanes, and
/// whether a vector memory access is effectively strided).
double issueCost(const hw::CoreConfig &Core, vm::OpClass Class, unsigned Lanes,
                 bool Strided) {
  const bool IsVector = Lanes > 1;
  switch (Class) {
  case vm::OpClass::IntAlu:
    return IsVector ? Core.VecOpCost : Core.CostIntAlu;
  case vm::OpClass::IntMul:
    return IsVector ? Core.VecOpCost : Core.CostIntMul;
  case vm::OpClass::IntDiv:
    return Core.CostIntDiv * (IsVector ? Lanes / 2.0 : 1.0);
  case vm::OpClass::FpAdd:
    return IsVector ? Core.VecOpCost : Core.CostFpAdd;
  case vm::OpClass::FpMul:
    return IsVector ? Core.VecOpCost : Core.CostFpMul;
  case vm::OpClass::FpFma:
    return IsVector ? Core.VecOpCost : Core.CostFpFma;
  case vm::OpClass::FpDiv:
    return Core.CostFpDiv * (IsVector ? Lanes / 2.0 : 1.0);
  case vm::OpClass::Load:
    if (IsVector)
      return Strided ? Core.VecStridedLaneCost * Lanes : Core.VecMemCost;
    return Core.CostLoad;
  case vm::OpClass::Store:
    if (IsVector)
      return Strided ? Core.VecStridedLaneCost * Lanes : Core.VecMemCost;
    return Core.CostStore;
  case vm::OpClass::Branch:
    return Core.CostBranch;
  case vm::OpClass::Call:
  case vm::OpClass::Ret:
    return Core.CostCall;
  case vm::OpClass::Other:
    return IsVector ? Core.VecOpCost : Core.CostOther;
  }
  return Core.CostOther;
}

/// The trace's lane count for \p I, exactly as Program.cpp caches it
/// into CInst::Lanes: result lanes, except stores (value lanes) and the
/// operand-reporting vector ops.
unsigned lanesOf(const Instruction *I) {
  switch (I->opcode()) {
  case Opcode::Store:
    return static_cast<unsigned>(I->operand(0)->type()->numElements());
  case Opcode::ReduceFAdd:
  case Opcode::ReduceAdd:
  case Opcode::ExtractElement:
    return static_cast<unsigned>(I->operand(0)->type()->numElements());
  default:
    return static_cast<unsigned>(I->type()->numElements());
  }
}

/// FLOPs the dynamic FLOP estimator books for one retirement.
double flopsOf(vm::OpClass Class, unsigned Lanes) {
  switch (Class) {
  case vm::OpClass::FpAdd:
  case vm::OpClass::FpMul:
  case vm::OpClass::FpDiv:
    return Lanes;
  case vm::OpClass::FpFma:
    return 2.0 * Lanes;
  default:
    return 0;
  }
}

/// Representative provenance for a loop: the first located instruction
/// of its header, else the function's own location.
SourceLoc locForLoop(const Loop &L, const Function &F) {
  for (const Instruction *I : *L.header())
    if (I->loc().isValid())
      return I->loc();
  SourceLoc Loc = F.loc();
  if (Loc.FuncName.empty())
    Loc.FuncName = F.name();
  return Loc;
}

/// Cache lines covered by the byte interval [Lo, Hi) (Hi exclusive).
double lineCount(uint64_t Lo, uint64_t Hi) {
  if (Hi <= Lo)
    return 0;
  return static_cast<double>(((Hi - 1) >> 6) - (Lo >> 6) + 1);
}

/// One nesting level of a memory site, innermost first.
struct SiteLevel {
  const Loop *L = nullptr;
  double Trips = 1;        ///< body executions per entry
  double EnterPerCall = 0; ///< loop entries per function invocation
  int64_t D = 0;           ///< address delta per iteration (bytes)
};

/// A static load/store site plus everything the cache model needs.
struct MemSite {
  const Instruction *I = nullptr;
  const Loop *AttrLoop = nullptr; ///< innermost loop, for attribution
  size_t InstIdx = 0;             ///< owning instantiation
  bool IsLoad = false;
  double OpsPerCall = 0; ///< executions per function invocation
  double Group = 1;      ///< lines per miss-paying op (Lanes if strided)
  double Lines0 = 1;     ///< distinct lines one execution touches
  uint64_t Base = 0;     ///< address at iteration zero of every loop
  int64_t SpanMin = 0;   ///< per-op span, relative to Base
  int64_t SpanMax = 0;   ///< exclusive end of the per-op span
  std::vector<SiteLevel> Nest; ///< innermost -> outermost
};

/// A conditional-branch site with its closed-form warm-up mispredicts.
struct BranchSite {
  const Loop *AttrLoop = nullptr;
  size_t InstIdx = 0;
  bool IsLatch = false;
  double Trips = 0;        ///< latch: body executions per entry
  double EnterPerCall = 0; ///< latch: loop entries per invocation
  bool Outcome = false;    ///< folded: the constant direction
  double ExecsPerCall = 0; ///< folded: executions per invocation
};

/// One (function, constant-argument signature) instantiation.
struct Inst {
  const Function *F = nullptr;
  std::vector<std::optional<int64_t>> Args;
  double Calls = 0;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<ScalarEvolution> SE;
  std::map<const BasicBlock *, double> Freq; ///< per invocation
  std::map<const Loop *, double> Enter;      ///< entries per invocation
  // Per-invocation op totals (finalize scales by Calls).
  double Ops = 0, Issue = 0, Flops = 0;
  std::map<const Loop *, double> LoopOps, LoopIssue;
  struct CallEdge {
    const Function *Callee = nullptr;
    std::vector<std::optional<int64_t>> Args;
    double FreqPerCall = 0;
  };
  std::vector<CallEdge> Callees;
};

class Engine {
public:
  Engine(const vm::Program &P, const hw::Platform &Plat)
      : P(P), Core(Plat.Core), Cache(Plat.Cache) {
    R.PlatformName = Plat.CoreName;
  }

  StaticCostResult run(const std::string &Entry,
                       const std::vector<int64_t> &EntryArgs);

private:
  void fail(const std::string &Reason) {
    if (!Failed) {
      Failed = true;
      R.UnknownReason = Reason;
    }
  }

  size_t instFor(const Function *F,
                 const std::vector<std::optional<int64_t>> &Args);
  void analyze(Inst &In, size_t Idx);
  void addCalls(size_t Idx, double Delta, unsigned Depth);
  void finalize();
  /// (instantiation index, innermost loop or null) -> attributed cycles.
  using AttrMap = std::map<std::pair<size_t, const Loop *>, double>;
  void buildBreakdown(const AttrMap &StallByLoop, const AttrMap &SpecByLoop);

  /// Rolled-up cycles / total iterations per (instantiation, loop),
  /// filled by buildBreakdown for the progressive bandwidth floor.
  AttrMap LoopCyc, LoopIter;

  /// The constant value of \p S at a use in \p UseBB: strides of loops
  /// that do not contain the use are folded at their final iteration
  /// (the exit value); strides of enclosing loops make it non-constant.
  std::optional<int64_t> constantAt(Inst &In, const SCEV &S,
                                    const BasicBlock *UseBB);

  /// Cache level that holds a working set of \p Bytes.
  hw::MemLevel serviceLevel(double Bytes) const {
    if (Bytes <= static_cast<double>(Cache.L1.SizeBytes))
      return hw::MemLevel::L1;
    if (Bytes <= static_cast<double>(Cache.L2.SizeBytes))
      return hw::MemLevel::L2;
    return hw::MemLevel::DRAM;
  }

  const vm::Program &P;
  const hw::CoreConfig &Core;
  const hw::CacheConfig &Cache;
  StaticCostResult R;
  bool Failed = false;

  std::vector<std::unique_ptr<Inst>> Insts; ///< discovery order
  std::map<std::string, size_t> InstIndex;  ///< signature -> index
  std::vector<MemSite> Sites;
  std::vector<BranchSite> Branches;
};

/// Stable signature of one instantiation: name plus each bound argument
/// ("?" for unbound).
std::string instKey(const Function *F,
                    const std::vector<std::optional<int64_t>> &Args) {
  std::string Key = F->name();
  for (const auto &A : Args) {
    Key += ';';
    Key += A ? std::to_string(*A) : "?";
  }
  return Key;
}

size_t Engine::instFor(const Function *F,
                       const std::vector<std::optional<int64_t>> &Args) {
  const std::string Key = instKey(F, Args);
  auto It = InstIndex.find(Key);
  if (It != InstIndex.end())
    return It->second;
  const size_t Idx = Insts.size();
  InstIndex.emplace(Key, Idx);
  Insts.push_back(std::make_unique<Inst>());
  Inst &In = *Insts.back();
  In.F = F;
  In.Args = Args;
  analyze(In, Idx);
  return Idx;
}

std::optional<int64_t> Engine::constantAt(Inst &In, const SCEV &S,
                                          const BasicBlock *UseBB) {
  if (!S.Known)
    return std::nullopt;
  int64_t V = S.Base;
  for (const auto &[L, D] : S.Strides) {
    if (L->contains(UseBB))
      return std::nullopt; // still varying at the use
    const LoopTrip &T = In.SE->trip(L);
    if (!T.Known)
      return std::nullopt;
    V += D * static_cast<int64_t>(T.Trips - 1); // exit value
  }
  return V;
}

void Engine::analyze(Inst &In, size_t Idx) {
  const Function &F = *In.F;
  In.DT = std::make_unique<DominatorTree>(F);
  In.LI = std::make_unique<LoopInfo>(F, *In.DT);

  ScalarEvolution::Bindings B;
  const ir::Module &M = P.module();
  for (size_t I = 0, E = M.numGlobals(); I != E; ++I) {
    const GlobalVariable *GV = M.globalAt(I);
    B[GV] = static_cast<int64_t>(P.globalAddress(GV->name()));
  }
  for (unsigned I = 0, E = F.numArgs(); I != E; ++I) {
    if (I >= In.Args.size() || !In.Args[I])
      continue;
    const Value *A = F.arg(I);
    if (A->type()->isInteger() || A->type()->isPointer())
      B[A] = *In.Args[I];
  }
  In.SE = std::make_unique<ScalarEvolution>(F, *In.LI, std::move(B));

  // Execution frequencies per invocation, in reverse post order. Back
  // edges are never propagated; a loop header's forward-edge inflow is
  // its entry count, multiplied by the proven trip count.
  In.Freq[F.entry()] = 1;
  auto IsBackEdge = [&](const BasicBlock *From, const BasicBlock *To) {
    for (Loop *L = In.LI->loopFor(From); L; L = L->parent())
      if (L->header() == To)
        return true;
    return false;
  };
  for (BasicBlock *BB : In.DT->reversePostOrder()) {
    double Freq = In.Freq.count(BB) ? In.Freq[BB] : 0;
    Loop *L = In.LI->loopFor(BB);
    if (L && L->header() == BB) {
      if (Freq == 0)
        continue; // never entered (e.g. dead vectorizer fallback)
      const LoopTrip &T = In.SE->trip(L);
      if (!T.Known) {
        fail("unknown trip count for loop at " +
             locForLoop(*L, F).str());
        return;
      }
      In.Enter[L] = Freq;
      Freq *= static_cast<double>(T.Trips);
      In.Freq[BB] = Freq;
    }
    if (Freq == 0)
      continue;

    const Instruction *Term = BB->terminator();
    if (!Term) {
      fail("block without terminator in '" + F.name() + "'");
      return;
    }
    switch (Term->opcode()) {
    case Opcode::Br: {
      BasicBlock *S = Term->successor(0);
      if (!IsBackEdge(BB, S))
        In.Freq[S] += Freq;
      break;
    }
    case Opcode::CondBr: {
      // A recognized latch exits exactly once per entry; everything
      // else must fold to a constant direction.
      const Loop *BL = In.LI->loopFor(BB);
      const LoopTrip *T = BL ? &In.SE->trip(BL) : nullptr;
      if (T && T->CanonicalShape && T->Latch == BB) {
        In.Freq[T->ExitBlock] += In.Enter[BL];
        BranchSite BS;
        BS.AttrLoop = BL;
        BS.InstIdx = Idx;
        BS.IsLatch = true;
        BS.Trips = static_cast<double>(T->Trips);
        BS.EnterPerCall = In.Enter[BL];
        Branches.push_back(BS);
        break;
      }
      std::optional<bool> Out = In.SE->foldCondition(Term);
      if (!Out) {
        fail("data-dependent branch at " +
             (Term->loc().isValid() ? Term->loc().str()
                                    : F.name() + ":" + BB->name()));
        return;
      }
      BasicBlock *S = Term->successor(*Out ? 0 : 1);
      if (IsBackEdge(BB, S)) {
        fail("statically infinite loop in '" + F.name() + "'");
        return;
      }
      In.Freq[S] += Freq;
      BranchSite BS;
      BS.AttrLoop = BL;
      BS.InstIdx = Idx;
      BS.Outcome = *Out;
      BS.ExecsPerCall = Freq;
      Branches.push_back(BS);
      break;
    }
    default:
      break; // ret
    }
  }

  // Per-block op mixes and memory/call sites.
  for (BasicBlock *BB : In.DT->reversePostOrder()) {
    const double Freq = In.Freq.count(BB) ? In.Freq[BB] : 0;
    if (Freq == 0)
      continue;
    const Loop *L = In.LI->loopFor(BB);
    for (const Instruction *I : *BB) {
      if (I->opcode() == Opcode::Phi)
        continue; // phis resolve as edge moves and never retire
      const vm::OpClass Class = vm::classifyOp(*I);
      const unsigned Lanes = lanesOf(I);

      bool Strided = false;
      int64_t LaneStride = 0;
      uint32_t ElemBytes = 0;
      if (I->opcode() == Opcode::Load || I->opcode() == Opcode::Store) {
        const bool IsLoad = I->opcode() == Opcode::Load;
        const Type *ValTy = IsLoad ? I->type() : I->operand(0)->type();
        ElemBytes = static_cast<uint32_t>(ValTy->scalarType()->sizeInBytes());
        LaneStride = ElemBytes;
        if (I->hasVectorStrideOperand()) {
          const unsigned StrideIdx = IsLoad ? 1 : 2;
          std::optional<int64_t> S =
              constantAt(In, In.SE->eval(I->operand(StrideIdx)), BB);
          // A varying stride within an enclosing loop is still fine for
          // the issue cost if it can never equal the element size; the
          // builders only emit either constant or loop-invariant
          // strides, so anything else is honestly unpredictable.
          if (!S) {
            fail("unpredictable vector stride at " +
                 (I->loc().isValid() ? I->loc().str() : F.name()));
            return;
          }
          // The interpreter retires stride == element size as a
          // contiguous access (StrideBytes = 0).
          if (*S != static_cast<int64_t>(ElemBytes)) {
            Strided = true;
            LaneStride = *S;
          }
        }
      }

      In.Ops += Freq;
      In.Flops += flopsOf(Class, Lanes) * Freq;
      const double Cost = issueCost(Core, Class, Lanes, Strided);
      In.Issue += Cost * Freq;
      In.LoopOps[L] += Freq;
      In.LoopIssue[L] += Cost * Freq;

      if (I->opcode() == Opcode::Load || I->opcode() == Opcode::Store) {
        const unsigned AddrIdx = I->opcode() == Opcode::Load ? 0 : 1;
        const SCEV &A = In.SE->eval(I->operand(AddrIdx));
        if (!A.Known) {
          fail("unpredictable address at " +
               (I->loc().isValid() ? I->loc().str() : F.name()));
          return;
        }
        MemSite S;
        S.I = I;
        S.AttrLoop = L;
        S.InstIdx = Idx;
        S.IsLoad = I->opcode() == Opcode::Load;
        S.OpsPerCall = Freq;
        S.Group = Strided ? Lanes : 1;
        if (Strided) {
          const int64_t Lo =
              std::min<int64_t>(0, LaneStride * (int64_t(Lanes) - 1));
          const int64_t Hi =
              std::max<int64_t>(0, LaneStride * (int64_t(Lanes) - 1)) +
              ElemBytes;
          S.SpanMin = Lo;
          S.SpanMax = Hi;
        } else {
          S.SpanMin = 0;
          S.SpanMax = static_cast<int64_t>(ElemBytes) * Lanes;
        }
        // Split the address into base plus per-loop strides; strides of
        // loops that do not contain the site are exit values, folded
        // into the base.
        int64_t Base = A.Base;
        std::map<const Loop *, int64_t> Strides;
        for (const auto &[SL, D] : A.Strides) {
          if (SL->contains(BB)) {
            Strides[SL] = D;
            continue;
          }
          const LoopTrip &T = In.SE->trip(SL);
          if (!T.Known) {
            fail("unpredictable address at " +
                 (I->loc().isValid() ? I->loc().str() : F.name()));
            return;
          }
          Base += D * static_cast<int64_t>(T.Trips - 1);
        }
        S.Base = static_cast<uint64_t>(Base);
        {
          const uint64_t Lo = S.Base + static_cast<uint64_t>(S.SpanMin);
          const uint64_t Hi = S.Base + static_cast<uint64_t>(S.SpanMax);
          S.Lines0 = Strided ? std::min<double>(Lanes, lineCount(Lo, Hi))
                             : lineCount(Lo, Hi);
        }
        for (const Loop *NL = L; NL; NL = NL->parent()) {
          SiteLevel Lv;
          Lv.L = NL;
          Lv.Trips = static_cast<double>(In.SE->trip(NL).Trips);
          Lv.EnterPerCall = In.Enter.count(NL) ? In.Enter.at(NL) : 0;
          Lv.D = Strides.count(NL) ? Strides.at(NL) : 0;
          S.Nest.push_back(Lv);
        }
        Sites.push_back(std::move(S));
      }

      if (I->opcode() == Opcode::Call) {
        const Function *Callee = I->callee();
        if (Callee && !Callee->isDeclaration()) {
          Inst::CallEdge E;
          E.Callee = Callee;
          E.FreqPerCall = Freq;
          for (unsigned Op = 0; Op != I->numOperands(); ++Op)
            E.Args.push_back(
                constantAt(In, In.SE->eval(I->operand(Op)), BB));
          In.Callees.push_back(std::move(E));
        }
      }
    }
  }
}

void Engine::addCalls(size_t Idx, double Delta, unsigned Depth) {
  if (Failed || Delta == 0)
    return;
  if (Depth > 64) {
    fail("call graph too deep (recursion?)");
    return;
  }
  Inst &In = *Insts[Idx];
  In.Calls += Delta;
  // Copy the edge list: instFor() may grow Insts and invalidate In.
  const std::vector<Inst::CallEdge> Edges = In.Callees;
  for (const Inst::CallEdge &E : Edges) {
    const size_t CalleeIdx = instFor(E.Callee, E.Args);
    if (Failed)
      return;
    addCalls(CalleeIdx, Delta * E.FreqPerCall, Depth + 1);
  }
}

void Engine::finalize() {
  // Pass 1: per-site tour sizes level by level, the per-iteration
  // working set of every loop, and the whole-program footprint.
  std::map<const Loop *, double> IterBytes; // one iteration's lines * 64
  double ProgramBytes = 0;
  std::vector<std::vector<double>> TourLines(Sites.size());
  for (size_t SI = 0; SI != Sites.size(); ++SI) {
    const MemSite &S = Sites[SI];
    double Cur = S.Lines0;
    int64_t MinOff = S.SpanMin, MaxOff = S.SpanMax;
    for (const SiteLevel &Lv : S.Nest) {
      IterBytes[Lv.L] += Cur * 64;
      if (Lv.D != 0) {
        const int64_t Extent =
            Lv.D * static_cast<int64_t>(Lv.Trips - 1);
        if (Extent > 0)
          MaxOff += Extent;
        else
          MinOff += Extent;
        const double Dense = lineCount(S.Base + static_cast<uint64_t>(MinOff),
                                       S.Base + static_cast<uint64_t>(MaxOff));
        Cur = std::min(Cur * Lv.Trips, Dense);
      }
      TourLines[SI].push_back(Cur);
    }
    ProgramBytes += Cur * 64;
  }

  // Set-conflict thrash: streams that advance in lockstep (same
  // innermost loop, same per-iteration stride) and start in the same
  // cache set keep evicting each other once there are more of them
  // than the set has ways — the dynamic CacheSim's per-set LRU makes
  // every such access miss (e.g. three way-aligned 32 KiB streams in a
  // 2-way 64 KiB L1). Detect those groups per level; a thrashing
  // site's accesses all miss that level instead of touring.
  auto NumSets = [](const hw::CacheLevelConfig &C) {
    return std::max<uint64_t>(1, C.SizeBytes / C.LineBytes /
                                     std::max(1u, C.Assoc));
  };
  std::vector<bool> ThrashL1(Sites.size(), false),
      ThrashL2(Sites.size(), false);
  std::vector<double> GroupBytes(Sites.size(), 0);
  auto MarkThrash = [&](const hw::CacheLevelConfig &Lvl,
                        std::vector<bool> &Flag) {
    const uint64_t Sets = NumSets(Lvl);
    std::map<std::tuple<size_t, const Loop *, int64_t, uint64_t>,
             std::vector<size_t>>
        Groups;
    for (size_t SI = 0; SI != Sites.size(); ++SI) {
      const MemSite &S = Sites[SI];
      if (S.Nest.empty() || S.Nest.front().D == 0)
        continue; // not streaming in its innermost loop
      Groups[{S.InstIdx, S.Nest.front().L, S.Nest.front().D,
              (S.Base >> 6) % Sets}]
          .push_back(SI);
    }
    for (const auto &[Key, Members] : Groups) {
      // Distinct streams only: a load and a store of the same array
      // walk the same lines and occupy one way between them.
      std::map<uint64_t, double> Footprint; // base -> per-run lines
      for (size_t SI : Members) {
        const double Lines =
            TourLines[SI].empty() ? Sites[SI].Lines0 : TourLines[SI].back();
        double &Slot = Footprint[Sites[SI].Base];
        Slot = std::max(Slot, Lines);
      }
      if (Footprint.size() <= Lvl.Assoc)
        continue;
      double Bytes = 0;
      for (const auto &[Base, Lines] : Footprint)
        Bytes += Lines * 64;
      for (size_t SI : Members) {
        Flag[SI] = true;
        GroupBytes[SI] = std::max(GroupBytes[SI], Bytes);
      }
    }
  };
  MarkThrash(Cache.L1, ThrashL1);
  MarkThrash(Cache.L2, ThrashL2);

  // Pass 2: classify every site's re-tours and cold lines. ColdByLoop
  // remembers which reuse loop's first iteration carries each site's
  // cold DRAM tour, for the progressive bandwidth floor.
  AttrMap StallByLoop, SpecByLoop, ColdByLoop, ColdStallByLoop;
  for (size_t SI = 0; SI != Sites.size(); ++SI) {
    const MemSite &S = Sites[SI];
    const Inst &In = *Insts[S.InstIdx];
    if (In.Calls == 0)
      continue;
    const double OpsTotal = S.OpsPerCall * In.Calls;
    double OpsL2 = 0, OpsDram = 0, ColdOps = 0;
    // The outermost temporal-reuse level: its first iteration streams
    // the site's whole footprint in from DRAM.
    const Loop *ReuseL = nullptr;
    for (const SiteLevel &Lv : S.Nest)
      if (Lv.D == 0 && Lv.Trips > 1)
        ReuseL = Lv.L;
    auto Classify = [&](double Tours, double Lines, double MissOps,
                        double WorkingSet) {
      switch (serviceLevel(WorkingSet)) {
      case hw::MemLevel::L1:
        break; // pure hits, no events
      case hw::MemLevel::L2:
        R.L1Misses += Tours * Lines;
        OpsL2 += Tours * MissOps;
        break;
      case hw::MemLevel::DRAM:
        R.L1Misses += Tours * Lines;
        R.L2Misses += Tours * Lines;
        R.DramBytes += Tours * Lines * 64;
        OpsDram += Tours * MissOps;
        break;
      }
    };

    if (ThrashL1[SI]) {
      // Every access misses L1. The first touch of each line is still
      // the cold DRAM tour; everything after is served from L2 when
      // the conflicting streams fit there (and don't conflict there
      // too), else straight from DRAM.
      const double ColdLines =
          TourLines[SI].empty() ? S.Lines0 : TourLines[SI].back();
      R.L1Misses += OpsTotal * S.Lines0;
      if (!ThrashL2[SI] &&
          GroupBytes[SI] <= static_cast<double>(Cache.L2.SizeBytes)) {
        OpsDram = std::min(ColdLines / S.Group, OpsTotal);
        OpsL2 = OpsTotal - OpsDram;
        ColdOps = OpsDram;
        R.L2Misses += ColdLines;
        R.DramBytes += ColdLines * 64;
        if (ReuseL)
          ColdByLoop[{S.InstIdx, ReuseL}] += ColdLines * 64;
      } else {
        OpsDram = OpsTotal;
        R.L2Misses += OpsTotal * S.Lines0;
        R.DramBytes += OpsTotal * S.Lines0 * 64;
      }
    } else {
      double Cur = S.Lines0;
      double OpsPerEntry = 1;
      for (size_t LvI = 0; LvI != S.Nest.size(); ++LvI) {
        const SiteLevel &Lv = S.Nest[LvI];
        if (Lv.D == 0 && Lv.Trips > 1) {
          const double MissOps =
              std::min(std::max(Cur / S.Group, 1.0), OpsPerEntry);
          Classify((Lv.Trips - 1) * Lv.EnterPerCall * In.Calls, Cur, MissOps,
                   IterBytes.at(Lv.L));
        }
        Cur = TourLines[SI][LvI];
        OpsPerEntry *= Lv.Trips;
      }
      // Across calls: the first tour of the whole run is cold DRAM, the
      // rest are served wherever the program's footprint fits.
      const double TopTours =
          S.Nest.empty() ? OpsTotal
                         : S.Nest.back().EnterPerCall * In.Calls;
      const double MissOps =
          std::min(std::max(Cur / S.Group, 1.0), OpsPerEntry);
      if (TopTours > 1)
        Classify(TopTours - 1, Cur, MissOps, ProgramBytes);
      R.L1Misses += Cur;
      R.L2Misses += Cur;
      R.DramBytes += Cur * 64;
      OpsDram += MissOps;
      ColdOps = MissOps;
      if (ReuseL)
        ColdByLoop[{S.InstIdx, ReuseL}] += Cur * 64;
    }

    if (S.IsLoad) {
      OpsDram = std::min(OpsDram, OpsTotal);
      OpsL2 = std::max(0.0, std::min(OpsL2, OpsTotal - OpsDram));
      const double OpsL1 = OpsTotal - OpsL2 - OpsDram;
      const double Stall = (OpsL1 * Cache.L1.HitLatency +
                            OpsL2 * Cache.L2.HitLatency +
                            OpsDram * Cache.DramLatency) /
                           std::max(1.0, Core.Mlp);
      R.MemStallCycles += Stall;
      StallByLoop[{S.InstIdx, S.AttrLoop}] += Stall;
      // Cold-tour DRAM stalls all land in the reuse loop's first
      // iteration; the bandwidth floor must compare against that
      // slower iteration, not the average.
      if (ReuseL)
        ColdStallByLoop[{S.InstIdx, ReuseL}] +=
            std::min(ColdOps, OpsDram) * Cache.DramLatency /
            std::max(1.0, Core.Mlp);
    }
  }

  // Branch warm-up mispredicts: the 2-bit counter starts weakly taken
  // and the loop predictor locks on after one repeated trip count, so a
  // canonical latch misses its exit twice (once when the trip count is
  // 1), a constant-true branch never misses, and a constant-false
  // branch misses its first execution only.
  for (const BranchSite &BS : Branches) {
    const Inst &In = *Insts[BS.InstIdx];
    if (In.Calls == 0)
      continue;
    double Miss = 0;
    if (BS.IsLatch) {
      const double Entries = BS.EnterPerCall * In.Calls;
      Miss = std::min(Entries, BS.Trips >= 2 ? 2.0 : 1.0);
    } else if (!BS.Outcome) {
      Miss = std::min(BS.ExecsPerCall * In.Calls, 1.0);
    }
    if (Miss == 0)
      continue;
    R.BranchMispredicts += Miss;
    R.BadSpecCycles += Miss * Core.BranchMissPenalty;
    SpecByLoop[{BS.InstIdx, BS.AttrLoop}] += Miss * Core.BranchMissPenalty;
  }

  // Totals.
  for (const auto &InPtr : Insts) {
    const Inst &In = *InPtr;
    R.Ops += In.Ops * In.Calls;
    R.Flops += In.Flops * In.Calls;
    R.IssueCycles += In.Issue * In.Calls;
  }
  R.Instret = R.Ops * Core.InstretFactor;
  R.Cycles = R.IssueCycles + R.MemStallCycles + R.BadSpecCycles;

  buildBreakdown(StallByLoop, SpecByLoop);

  // Progressive DRAM bandwidth floor. The dynamic model clamps Cycles
  // against DramBytes / DramBytesPerCycle continuously, so the floor
  // can bind during a cold first pass even when the whole run is far
  // from bandwidth-bound. Statically: each reuse loop's cold tour
  // flows within one of its iterations, so the excess over that
  // iteration's cycles becomes bandwidth stall; a whole-run residual
  // clamp covers programs with no reuse loop at all.
  for (const auto &[Key, Bytes] : ColdByLoop) {
    auto CycIt = LoopCyc.find(Key);
    auto IterIt = LoopIter.find(Key);
    if (CycIt == LoopCyc.end() || IterIt == LoopIter.end() ||
        IterIt->second <= 0)
      continue;
    // The first iteration is the slow one: the average iteration plus
    // the cold DRAM stalls, which are amortized in the average but
    // actually paid up front.
    auto ColdIt = ColdStallByLoop.find(Key);
    const double ColdStall =
        ColdIt == ColdStallByLoop.end() ? 0 : ColdIt->second;
    const double FirstIter =
        std::max(0.0, CycIt->second - ColdStall) / IterIt->second +
        ColdStall;
    const double Excess = Bytes / Cache.DramBytesPerCycle - FirstIter;
    if (Excess > 0)
      R.BandwidthCycles += Excess;
  }
  R.Cycles += R.BandwidthCycles;
  const double Floor = R.DramBytes / Cache.DramBytesPerCycle;
  if (R.Cycles < Floor) {
    R.BandwidthCycles += Floor - R.Cycles;
    R.Cycles = Floor;
  }
  R.Known = true;
}

void Engine::buildBreakdown(const AttrMap &StallByLoop,
                            const AttrMap &SpecByLoop) {
  for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
    const Inst &In = *Insts[Idx];
    const std::vector<Loop *> Loops = In.LI->loopsInPreorder();
    auto Attr = [&](const AttrMap &M, const Loop *L) {
      auto It = M.find({Idx, L});
      return It == M.end() ? 0.0 : It->second;
    };

    // Own cost per loop, then roll subloops into parents (preorder
    // guarantees parents precede children, so the reverse walk pushes
    // inner totals outward).
    std::map<const Loop *, double> Cyc, Ops;
    for (const Loop *L : Loops) {
      Cyc[L] = In.Calls * (In.LoopIssue.count(L) ? In.LoopIssue.at(L) : 0) +
               Attr(StallByLoop, L) + Attr(SpecByLoop, L);
      Ops[L] = In.Calls * (In.LoopOps.count(L) ? In.LoopOps.at(L) : 0);
    }
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It) {
      const Loop *L = *It;
      if (L->parent()) {
        Cyc[L->parent()] += Cyc[L];
        Ops[L->parent()] += Ops[L];
      }
    }

    for (const Loop *L : Loops) {
      StaticLoopCost LC;
      LC.Function = In.F->name();
      LC.HeaderName = L->header()->name();
      LC.Loc = locForLoop(*L, *In.F);
      LC.Depth = L->depth();
      const LoopTrip &T = In.SE->trip(L);
      LC.TripKnown = T.Known;
      LC.Trips = T.Known ? T.Trips : 0;
      LC.Entries = In.Calls * (In.Enter.count(L) ? In.Enter.at(L) : 0);
      LC.Iterations =
          In.Calls *
          (In.Freq.count(L->header()) ? In.Freq.at(L->header()) : 0);
      LC.Cycles = Cyc[L];
      LC.Ops = Ops[L];
      LoopCyc[{Idx, L}] = LC.Cycles;
      LoopIter[{Idx, L}] = LC.Iterations;
      R.Loops.push_back(std::move(LC));
    }

    // Function rollup: its whole issue cost plus every stall/spec
    // cycle attributed inside it (loops and straight-line code alike).
    double FuncCycles = In.Calls * In.Issue;
    for (const auto &[Key, Cycles] : StallByLoop)
      if (Key.first == Idx)
        FuncCycles += Cycles;
    for (const auto &[Key, Cycles] : SpecByLoop)
      if (Key.first == Idx)
        FuncCycles += Cycles;
    StaticFuncCost FC;
    FC.Name = In.F->name();
    FC.Loc = In.F->loc();
    if (FC.Loc.FuncName.empty())
      FC.Loc.FuncName = In.F->name();
    FC.Calls = In.Calls;
    FC.Cycles = FuncCycles;
    FC.Ops = In.Calls * In.Ops;
    R.Functions.push_back(std::move(FC));
  }
}

StaticCostResult Engine::run(const std::string &Entry,
                             const std::vector<int64_t> &EntryArgs) {
  const Function *F = P.findFunction(Entry);
  if (!F || F->isDeclaration()) {
    fail("entry function '" + Entry + "' not found");
    return std::move(R);
  }
  std::vector<std::optional<int64_t>> Args;
  for (unsigned I = 0; I != F->numArgs(); ++I) {
    if (I < EntryArgs.size())
      Args.push_back(EntryArgs[I]);
    else
      Args.push_back(std::nullopt);
  }
  const size_t EntryIdx = instFor(F, Args);
  if (!Failed)
    addCalls(EntryIdx, 1, 0);
  if (!Failed)
    finalize();
  return std::move(R);
}

} // namespace

StaticCostResult
mperf::analysis::computeStaticCost(const vm::Program &P,
                                   const hw::Platform &Plat,
                                   const std::string &Entry,
                                   const std::vector<int64_t> &EntryArgs) {
  Engine E(P, Plat);
  return E.run(Entry, EntryArgs);
}
