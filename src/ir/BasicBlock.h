//===- BasicBlock.h - IR basic blocks --------------------------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: an ordered list of instructions ending in exactly one
/// terminator. Blocks own their instructions.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_IR_BASICBLOCK_H
#define MPERF_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <vector>

namespace mperf {
namespace ir {

class Function;

/// An ordered, owning sequence of instructions with a single terminator.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  Function *parent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  //===--------------------------------------------------------------===//
  // Instruction list
  //===--------------------------------------------------------------===//

  /// Appends \p I to the block and takes ownership.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I before position \p Index.
  Instruction *insertAt(size_t Index, std::unique_ptr<Instruction> I);

  /// Removes the instruction at \p Index and returns ownership of it.
  std::unique_ptr<Instruction> remove(size_t Index);

  /// Returns the index of \p I, or SIZE_MAX when absent.
  size_t indexOf(const Instruction *I) const;

  size_t size() const { return Instructions.size(); }
  bool empty() const { return Instructions.empty(); }
  Instruction *at(size_t Index) const {
    assert(Index < Instructions.size() && "instruction index out of range");
    return Instructions[Index].get();
  }

  /// Iteration yields Instruction* in order.
  class iterator {
  public:
    using Inner = std::vector<std::unique_ptr<Instruction>>::const_iterator;
    explicit iterator(Inner It) : It(It) {}
    Instruction *operator*() const { return It->get(); }
    iterator &operator++() {
      ++It;
      return *this;
    }
    bool operator!=(const iterator &O) const { return It != O.It; }
    bool operator==(const iterator &O) const { return It == O.It; }

  private:
    Inner It;
  };
  iterator begin() const { return iterator(Instructions.begin()); }
  iterator end() const { return iterator(Instructions.end()); }

  //===--------------------------------------------------------------===//
  // CFG queries
  //===--------------------------------------------------------------===//

  /// Returns the terminator, or null when the block is still open.
  Instruction *terminator() const;

  /// Successor blocks from the terminator (empty for ret).
  std::vector<BasicBlock *> successors() const;

  /// Predecessor blocks, computed by scanning the parent function.
  std::vector<BasicBlock *> predecessors() const;

  /// Returns all phi instructions (which must be a prefix of the block).
  std::vector<Instruction *> phis() const;

private:
  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Instructions;
};

} // namespace ir
} // namespace mperf

#endif // MPERF_IR_BASICBLOCK_H
