//===- Matmul.h - The paper's tiled matmul kernel --------------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exact kernel of §5.2, as IR: the six-deep tiled SGEMM loop nest
/// with a scalar FMA reduction in the innermost k loop. `main` wraps the
/// kernel call with cycle reads so the program "self-reports" its
/// GFLOP/s, reproducing the 33.0-vs-34.06 comparison of Fig. 4.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_WORKLOADS_MATMUL_H
#define MPERF_WORKLOADS_MATMUL_H

#include "ir/Module.h"
#include "support/Error.h"
#include "vm/Interpreter.h"

#include <memory>

namespace mperf {
namespace transform {
struct TargetInfo;
} // namespace transform

namespace workloads {

/// Kernel parameters. N must be a multiple of Tile.
struct MatmulConfig {
  unsigned N = 128;
  unsigned Tile = 32;
  uint64_t Seed = 0x5eed;
};

/// Name of the native cycle-clock function `main` calls.
constexpr const char *ClockFnName = "mperf_clock_cycles";

/// A built matmul program.
struct MatmulWorkload {
  std::unique_ptr<ir::Module> M;
  MatmulConfig Config;

  /// Fills A and B with deterministic pseudo-random values and zeroes C.
  void initialize(vm::Interpreter &Vm) const;

  /// Recomputes C on the host and compares against simulated memory.
  /// Returns the maximum absolute element error.
  double verify(vm::Interpreter &Vm) const;

  /// The kernel's self-reported cycles (read from the SELF_CYCLES
  /// global after a run).
  uint64_t selfReportedCycles(vm::Interpreter &Vm) const;

  /// FLOPs the kernel performs: 2 * N^3.
  uint64_t flops() const {
    return 2ull * Config.N * Config.N * Config.N;
  }
};

/// Builds the module: globals A, B, C, SELF_CYCLES; functions
/// `matmul_kernel(ptr, ptr, ptr, i64)` and `main()`.
MatmulWorkload buildMatmul(const MatmulConfig &Config);

/// The immutable compiled form: shareable across threads/scenarios.
/// Input-data setup is the separate, per-Instance initialize() step —
/// it consults only the config, so one shared program can be set up
/// and run concurrently from any number of instances.
struct MatmulProgram {
  std::shared_ptr<const vm::Program> Prog;
  MatmulConfig Config;

  /// Fills A and B with deterministic pseudo-random values and zeroes C
  /// in \p Vm's private memory.
  void initialize(vm::Instance &Vm) const;

  /// Recomputes C on the host and compares against simulated memory.
  /// Returns the maximum absolute element error.
  double verify(vm::Instance &Vm) const;

  /// The kernel's self-reported cycles after a run.
  uint64_t selfReportedCycles(vm::Instance &Vm) const;

  /// FLOPs the kernel performs: 2 * N^3.
  uint64_t flops() const {
    return 2ull * Config.N * Config.N * Config.N;
  }
};

/// The pure compile step: build + (optional) vectorize for
/// \p VectorTarget + verify + lower. Deterministic in (Config,
/// VectorTarget), which is what makes the result cacheable.
Expected<MatmulProgram>
compileMatmul(const MatmulConfig &Config,
              const transform::TargetInfo *VectorTarget = nullptr);

/// Registers the cycle-clock native backed by \p ReadCycles.
void bindClock(vm::Instance &Vm, std::function<double()> ReadCycles);

} // namespace workloads
} // namespace mperf

#endif // MPERF_WORKLOADS_MATMUL_H
