//===- kernel_test.cpp - perf_event subsystem tests ----------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "kernel/PerfEvent.h"

#include <gtest/gtest.h>

using namespace mperf;
using namespace mperf::hw;
using namespace mperf::kernel;

namespace {

/// A busy-loop workload with a call so samples have a callchain.
const char *BusyText = R"(module m
global @OUT 8
func @inner(i64 %x) -> i64 {
entry:
  %a = mul i64 %x, 3
  %b = add i64 %a, 1
  ret i64 %b
}
func @main(i64 %n) -> void {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i.next, loop ]
  %v = call i64 @inner(i64 %i)
  store i64 %v, @OUT
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, %n
  cond_br %c, loop, exit
exit:
  ret
}
)";

/// Everything a test run needs, wired together.
struct Stack {
  Platform P;
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<vm::Interpreter> Vm;
  std::unique_ptr<CoreModel> Core;
  std::unique_ptr<Pmu> ThePmu;
  std::unique_ptr<sbi::SbiPmu> Sbi;
  std::unique_ptr<PerfEventSubsystem> Perf;

  explicit Stack(Platform Platform) : P(std::move(Platform)) {
    auto MOr = ir::parseModule(BusyText);
    EXPECT_TRUE(MOr.hasValue()) << (MOr ? "" : MOr.errorMessage());
    M = std::move(*MOr);
    Vm = std::make_unique<vm::Interpreter>(*M);
    Core = std::make_unique<CoreModel>(P.Core, P.Cache);
    ThePmu = std::make_unique<Pmu>(P.PmuCaps);
    Core->setEventSink(
        [this](const EventDeltas &D) { ThePmu->advance(D); });
    Sbi = std::make_unique<sbi::SbiPmu>(*ThePmu, *Core);
    Perf = std::make_unique<PerfEventSubsystem>(P, *ThePmu, *Sbi, *Core, *Vm);
    Vm->addConsumer(Core.get());
  }

  void run(uint64_t N) {
    auto R = Vm->run("main", {vm::RtValue::ofInt(N)});
    EXPECT_TRUE(R.hasValue()) << (R ? "" : R.errorMessage());
  }
};

PerfEventAttr hwEvent(HwEventId Hw, uint64_t Period = 0) {
  PerfEventAttr Attr;
  Attr.EventType = PerfEventAttr::Type::Hardware;
  Attr.Hw = Hw;
  Attr.SamplePeriod = Period;
  return Attr;
}

PerfEventAttr rawEvent(uint16_t Code, uint64_t Period = 0) {
  PerfEventAttr Attr;
  Attr.EventType = PerfEventAttr::Type::Raw;
  Attr.RawCode = Code;
  Attr.SamplePeriod = Period;
  return Attr;
}

} // namespace

TEST(PerfEvent, CountingCyclesAndInstructions) {
  Stack S(theadC910());
  auto CyclesFd = S.Perf->open(hwEvent(HwEventId::CpuCycles));
  ASSERT_TRUE(CyclesFd.hasValue()) << CyclesFd.errorMessage();
  auto InstrFd = S.Perf->open(hwEvent(HwEventId::Instructions), *CyclesFd);
  ASSERT_TRUE(InstrFd.hasValue());
  ASSERT_FALSE(S.Perf->enable(*CyclesFd).isError());
  S.run(1000);
  ASSERT_FALSE(S.Perf->disable(*CyclesFd).isError());

  auto Cycles = S.Perf->read(*CyclesFd);
  auto Instr = S.Perf->read(*InstrFd);
  ASSERT_TRUE(Cycles.hasValue());
  ASSERT_TRUE(Instr.hasValue());
  EXPECT_GT(*Cycles, 1000u);
  EXPECT_GT(*Instr, 1000u);

  // Disabled counters stay put.
  S.run(1000);
  EXPECT_EQ(*S.Perf->read(*CyclesFd), *Cycles);
}

TEST(PerfEvent, SamplingCyclesDirectlyOnMaturePlatform) {
  Stack S(theadC910());
  auto Leader = S.Perf->open(hwEvent(HwEventId::CpuCycles, 5000));
  ASSERT_TRUE(Leader.hasValue()) << Leader.errorMessage();
  ASSERT_FALSE(S.Perf->enable(*Leader).isError());
  S.run(10000);
  ASSERT_FALSE(S.Perf->disable(*Leader).isError());
  EXPECT_GT(S.Perf->ringBuffer().samples().size(), 3u);
  EXPECT_EQ(S.Perf->numInterrupts(),
            S.Perf->ringBuffer().samples().size());
}

TEST(PerfEvent, X60RefusesStandardSampling) {
  // The exact failure the paper documents: sampling mcycle/minstret is
  // EOPNOTSUPP on the X60.
  Stack S(spacemitX60());
  auto Fd = S.Perf->open(hwEvent(HwEventId::CpuCycles, 5000));
  ASSERT_FALSE(Fd.hasValue());
  EXPECT_NE(Fd.errorMessage().find("EOPNOTSUPP"), std::string::npos);
  auto Fd2 = S.Perf->open(hwEvent(HwEventId::Instructions, 5000));
  ASSERT_FALSE(Fd2.hasValue());
}

TEST(PerfEvent, U74RefusesAllSampling) {
  Stack S(sifiveU74());
  auto Fd = S.Perf->open(hwEvent(HwEventId::CpuCycles, 5000));
  ASSERT_FALSE(Fd.hasValue());
  auto Raw = S.Perf->open(rawEvent(VE_L1D_MISS, 5000));
  ASSERT_FALSE(Raw.hasValue());
  // Counting still works.
  auto Counting = S.Perf->open(hwEvent(HwEventId::CpuCycles));
  EXPECT_TRUE(Counting.hasValue());
}

TEST(PerfEvent, X60WorkaroundGroupSamplesStandardCounters) {
  // The paper's key observation (§3.3): lead with u_mode_cycle, and the
  // group's mcycle/minstret get read out on every leader overflow.
  Stack S(spacemitX60());
  auto Leader = S.Perf->open(rawEvent(VE_U_MODE_CYCLE, 5000));
  ASSERT_TRUE(Leader.hasValue()) << Leader.errorMessage();
  auto CyclesFd = S.Perf->open(hwEvent(HwEventId::CpuCycles), *Leader);
  ASSERT_TRUE(CyclesFd.hasValue());
  auto InstrFd = S.Perf->open(hwEvent(HwEventId::Instructions), *Leader);
  ASSERT_TRUE(InstrFd.hasValue());

  ASSERT_FALSE(S.Perf->enable(*Leader).isError());
  S.run(10000);
  ASSERT_FALSE(S.Perf->disable(*Leader).isError());

  const auto &Samples = S.Perf->ringBuffer().samples();
  ASSERT_GT(Samples.size(), 3u);
  // Every sample carries all three counters, monotonically increasing.
  uint64_t PrevCycles = 0, PrevInstr = 0;
  for (const PerfSample &Sample : Samples) {
    ASSERT_EQ(Sample.GroupValues.size(), 3u);
    uint64_t C = 0, I = 0;
    for (auto &[Fd, V] : Sample.GroupValues) {
      if (Fd == *CyclesFd)
        C = V;
      if (Fd == *InstrFd)
        I = V;
    }
    EXPECT_GE(C, PrevCycles);
    EXPECT_GE(I, PrevInstr);
    PrevCycles = C;
    PrevInstr = I;
  }
  EXPECT_GT(PrevCycles, 0u);
  EXPECT_GT(PrevInstr, 0u);
}

TEST(PerfEvent, SamplesCarryCallchains) {
  Stack S(theadC910());
  auto Leader = S.Perf->open(hwEvent(HwEventId::CpuCycles, 2000));
  ASSERT_TRUE(Leader.hasValue());
  ASSERT_FALSE(S.Perf->enable(*Leader).isError());
  S.run(3000);
  ASSERT_FALSE(S.Perf->disable(*Leader).isError());

  bool SawInner = false;
  for (const PerfSample &Sample : S.Perf->ringBuffer().samples()) {
    ASSERT_FALSE(Sample.Callchain.empty());
    EXPECT_EQ(Sample.Callchain.front(), "main");
    if (Sample.Leaf == "inner") {
      SawInner = true;
      ASSERT_EQ(Sample.Callchain.size(), 2u);
      EXPECT_EQ(Sample.Callchain.back(), "inner");
    }
  }
  EXPECT_TRUE(SawInner);
}

TEST(PerfEvent, GroupReadReturnsAllMembers) {
  Stack S(theadC910());
  auto Leader = S.Perf->open(hwEvent(HwEventId::CpuCycles));
  auto Member = S.Perf->open(hwEvent(HwEventId::Instructions), *Leader);
  ASSERT_TRUE(Member.hasValue());
  ASSERT_FALSE(S.Perf->enable(*Leader).isError());
  S.run(500);
  auto GroupOr = S.Perf->readGroup(*Leader);
  ASSERT_TRUE(GroupOr.hasValue());
  EXPECT_EQ(GroupOr->size(), 2u);
  // Non-leader fds are rejected.
  EXPECT_FALSE(S.Perf->readGroup(*Member).hasValue());
}

TEST(PerfEvent, BadFdsAndGroups) {
  Stack S(theadC910());
  EXPECT_TRUE(S.Perf->enable(999).isError());
  EXPECT_FALSE(S.Perf->read(999).hasValue());
  auto Leader = S.Perf->open(hwEvent(HwEventId::CpuCycles));
  auto Member = S.Perf->open(hwEvent(HwEventId::Instructions), *Leader);
  ASSERT_TRUE(Member.hasValue());
  // Grouping under a non-leader fails.
  auto Bad = S.Perf->open(hwEvent(HwEventId::CacheMisses), *Member);
  EXPECT_FALSE(Bad.hasValue());
}

TEST(PerfEvent, CloseReleasesCounters) {
  Stack S(sifiveU74()); // only two hpm counters: exhaustion is observable
  auto A = S.Perf->open(rawEvent(VE_L1D_MISS));
  auto B = S.Perf->open(rawEvent(VE_L2_MISS));
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  EXPECT_FALSE(S.Perf->open(rawEvent(VE_BRANCH_MISS)).hasValue());
  ASSERT_FALSE(S.Perf->close(*A).isError());
  EXPECT_TRUE(S.Perf->open(rawEvent(VE_BRANCH_MISS)).hasValue());
}

TEST(PerfEvent, HandlerCostsAppearAsSupervisorCycles) {
  Stack S(spacemitX60());
  // Count S-mode cycles alongside the sampling workaround group.
  auto Leader = S.Perf->open(rawEvent(VE_U_MODE_CYCLE, 3000));
  ASSERT_TRUE(Leader.hasValue());
  auto SModeFd = S.Perf->open(rawEvent(VE_S_MODE_CYCLE), *Leader);
  ASSERT_TRUE(SModeFd.hasValue());
  ASSERT_FALSE(S.Perf->enable(*Leader).isError());
  S.run(2000);
  auto SMode = S.Perf->read(*SModeFd);
  ASSERT_TRUE(SMode.hasValue());
  EXPECT_GT(*SMode, 0u); // the overflow handler ran in S-mode
}
