//===- Function.cpp - IR functions -----------------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace mperf;
using namespace mperf::ir;

Function::Function(Type *FnPtrTy, std::string Name, Type *RetTy,
                   std::vector<Type *> ParamTys)
    : Value(ValueKind::Function, FnPtrTy), RetTy(RetTy),
      ParamTys(std::move(ParamTys)) {
  setName(std::move(Name));
  for (unsigned I = 0, E = this->ParamTys.size(); I != E; ++I)
    Args.push_back(std::make_unique<Argument>(
        this->ParamTys[I], "arg" + std::to_string(I), I));
}

BasicBlock *Function::createBlock(std::string Name) {
  auto BB = std::make_unique<BasicBlock>(std::move(Name));
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

BasicBlock *Function::appendBlock(std::unique_ptr<BasicBlock> BB) {
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

std::unique_ptr<BasicBlock> Function::removeBlock(BasicBlock *BB) {
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It) {
    if (It->get() != BB)
      continue;
    std::unique_ptr<BasicBlock> Owned = std::move(*It);
    Blocks.erase(It);
    Owned->setParent(nullptr);
    return Owned;
  }
  MPERF_UNREACHABLE("removeBlock: block not in function");
}

unsigned Function::replaceAllUsesWith(Value *From, Value *To) {
  unsigned Count = 0;
  for (BasicBlock *BB : *this)
    for (Instruction *I : *BB)
      Count += I->replaceUsesOf(From, To);
  return Count;
}

uint64_t Function::instructionCount() const {
  uint64_t Count = 0;
  for (BasicBlock *BB : *this)
    Count += BB->size();
  return Count;
}
