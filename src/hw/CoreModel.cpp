//===- CoreModel.cpp - Cycle-approximate core timing models -------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "hw/CoreModel.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

using namespace mperf;
using namespace mperf::hw;
using namespace mperf::vm;

std::string_view mperf::hw::eventName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::Cycles:
    return "cycles";
  case EventKind::Instret:
    return "instructions";
  case EventKind::L1DMiss:
    return "l1d-miss";
  case EventKind::L2Miss:
    return "l2-miss";
  case EventKind::BranchMispredict:
    return "branch-miss";
  case EventKind::UModeCycles:
    return "u_mode_cycle";
  case EventKind::MModeCycles:
    return "m_mode_cycle";
  case EventKind::SModeCycles:
    return "s_mode_cycle";
  case EventKind::FpOpsSpec:
    return "fp-ops-spec";
  }
  return "unknown";
}

CoreModel::CoreModel(const CoreConfig &Core, const CacheConfig &Cache,
                     SharedL2 *Shared)
    : Core(Core), Cache(Cache) {
  if (Shared)
    this->Cache.attachSharedL2(Shared);

  // Host-level escape hatch, mirroring MPERF_EXEC_ENGINE: flip every
  // core model in the process to one consumption tier without touching
  // call sites (A/B timing, differential debugging through the full
  // Session/sweep stack). Neither value may change simulation results.
  if (const char *E = std::getenv("MPERF_TIMING_TIER")) {
    if (std::string_view(E) == "scalar")
      Tier = TimingTier::Scalar;
    else if (std::string_view(E) == "batched")
      Tier = TimingTier::Batched;
  }

  // Batched-tier lookup tables. All inputs (CoreConfig, cache geometry,
  // the shared-L2 attachment) are fixed for the model's lifetime, and
  // every entry is the exact double costFor()/latencyFor() would
  // produce, so table hits cannot perturb the accumulation.
  RetiredOp Probe;
  Probe.Lanes = 1;
  for (unsigned C = 0; C <= unsigned(OpClass::Other); ++C) {
    Probe.Class = OpClass(C);
    CostScalar[C] = costFor(Probe);
  }
  for (unsigned L = 0; L != 3; ++L)
    StallByLevel[L] =
        this->Cache.latencyFor(MemLevel(L)) / std::max(1.0, Core.Mlp);
  FlopsPerLane[unsigned(OpClass::FpAdd)] = 1.0;
  FlopsPerLane[unsigned(OpClass::FpMul)] = 1.0;
  FlopsPerLane[unsigned(OpClass::FpDiv)] = 1.0;
  FlopsPerLane[unsigned(OpClass::FpFma)] = 2.0;
  for (unsigned C = 0; C <= unsigned(OpClass::Other); ++C)
    if (FlopsPerLane[C] != 0)
      FlopClassMask |= 1u << C;
}

void CoreModel::reset() {
  Cache.reset();
  Stats = CoreStats();
  Predictor.clear();
  FastPred.clear();
  FastPredUsed = 0;
  BwDramCached = 0;
  BwFloorCached = 0;
}

void CoreModel::addCycles(double Cycles) {
  Stats.Cycles += Cycles;
  Stats.FirmwareCycles += Cycles;
  if (EventSink) {
    EventDeltas D;
    D.Cycles = Cycles;
    D.Mode = CurrentMode;
    EventSink(D);
  }
}

bool CoreModel::predictAndTrain(BranchState &State, bool Taken) {
  // A 2-bit saturating counter combined with a loop predictor: when a
  // branch was last seen exiting after N consecutive taken iterations,
  // the exit at iteration N is predicted correctly the next time around
  // (fixed-trip inner loops are free, as on real cores). Returns true
  // when the prediction was correct.
  //
  // The loop predictor only takes over once the trip count repeated;
  // irregular branches stay on the 2-bit counter.
  bool Predicted;
  if (State.LoopConfidence >= 1 && State.LastTrip > 0)
    Predicted = State.Streak + 1 < State.LastTrip; // exit on the last trip
  else
    Predicted = State.Counter >= 2;
  bool Correct = Predicted == Taken;

  if (Taken) {
    ++State.Streak;
    State.Counter = static_cast<uint8_t>(std::min<int>(State.Counter + 1, 3));
  } else {
    uint32_t Trip = State.Streak + 1;
    if (Trip == State.LastTrip)
      State.LoopConfidence =
          static_cast<uint8_t>(std::min<int>(State.LoopConfidence + 1, 3));
    else
      State.LoopConfidence = 0;
    State.LastTrip = Trip;
    State.Streak = 0;
    State.Counter = static_cast<uint8_t>(std::max<int>(State.Counter - 1, 0));
  }
  return Correct;
}

bool CoreModel::predictBranch(const vm::RetiredOp &Op) {
  return predictAndTrain(Predictor.try_emplace(Op.Inst).first->second,
                         Op.Taken);
}

//===----------------------------------------------------------------------===//
// Batched-tier predictor table
//===----------------------------------------------------------------------===//
//
// The prediction itself is the shared transition function above; only
// the Inst -> BranchState association differs from the scalar tier's
// std::map, so a lookup is a multiplicative hash plus (nearly always)
// one probe instead of a red-black-tree descent per branch.

static inline size_t hashInst(const ir::Instruction *Inst) {
  uint64_t H = reinterpret_cast<uintptr_t>(Inst);
  H *= 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(H ^ (H >> 29));
}

void CoreModel::reserveFastPred(size_t Extra) {
  // Keep the table under 3/4 load even if every reserved key is new, so
  // probe chains stay short and fastPredState() never has to grow.
  if (!FastPred.empty() && (FastPredUsed + Extra) * 4 < FastPred.size() * 3)
    return;
  size_t NewSize = FastPred.empty() ? 64 : FastPred.size();
  while ((FastPredUsed + Extra) * 4 >= NewSize * 3)
    NewSize *= 2;
  std::vector<PredEntry> Old = std::move(FastPred);
  FastPred.assign(NewSize, PredEntry());
  size_t Mask = NewSize - 1;
  for (const PredEntry &E : Old) {
    if (!E.Key)
      continue;
    size_t H = hashInst(E.Key) & Mask;
    while (FastPred[H].Key)
      H = (H + 1) & Mask;
    FastPred[H] = E;
  }
}

CoreModel::BranchState &CoreModel::fastPredState(const ir::Instruction *Inst) {
  size_t Mask = FastPred.size() - 1;
  size_t H = hashInst(Inst) & Mask;
  while (true) {
    PredEntry &E = FastPred[H];
    if (E.Key == Inst)
      return E.State;
    if (!E.Key) {
      E.Key = Inst;
      ++FastPredUsed;
      return E.State;
    }
    H = (H + 1) & Mask;
  }
}

double CoreModel::costFor(const vm::RetiredOp &Op) {
  bool IsVector = Op.Lanes > 1;
  switch (Op.Class) {
  case OpClass::IntAlu:
    return IsVector ? Core.VecOpCost : Core.CostIntAlu;
  case OpClass::IntMul:
    return IsVector ? Core.VecOpCost : Core.CostIntMul;
  case OpClass::IntDiv:
    return Core.CostIntDiv * (IsVector ? Op.Lanes / 2.0 : 1.0);
  case OpClass::FpAdd:
    return IsVector ? Core.VecOpCost : Core.CostFpAdd;
  case OpClass::FpMul:
    return IsVector ? Core.VecOpCost : Core.CostFpMul;
  case OpClass::FpFma:
    return IsVector ? Core.VecOpCost : Core.CostFpFma;
  case OpClass::FpDiv:
    return Core.CostFpDiv * (IsVector ? Op.Lanes / 2.0 : 1.0);
  case OpClass::Load:
    if (IsVector)
      return Op.StrideBytes != 0 ? Core.VecStridedLaneCost * Op.Lanes
                                 : Core.VecMemCost;
    return Core.CostLoad;
  case OpClass::Store:
    if (IsVector)
      return Op.StrideBytes != 0 ? Core.VecStridedLaneCost * Op.Lanes
                                 : Core.VecMemCost;
    return Core.CostStore;
  case OpClass::Branch:
    return Core.CostBranch;
  case OpClass::Call:
  case OpClass::Ret:
    return Core.CostCall;
  case OpClass::Other:
    return IsVector ? Core.VecOpCost : Core.CostOther;
  }
  return Core.CostOther;
}

void CoreModel::onRetireBatch(const vm::RetiredOp *Ops, size_t Count,
                              const ir::Instruction *&RetireCursor) {
  for (size_t I = 0; I != Count; ++I) {
    RetireCursor = Ops[I].Inst;
    retireOne(Ops[I]);
  }
}

void CoreModel::onRetireColumns(const vm::RetireColumns &Cols,
                                const ir::Instruction *&RetireCursor) {
  if (Tier != TimingTier::Batched) {
    // Defensive: a direct caller on a scalar-tier model gets the
    // reference path (the producer normally checks wantsRetireColumns
    // and never sends columns here).
    onRetireBatch(Cols.Ops, Cols.Count, RetireCursor);
    return;
  }
  // Batching-effectiveness telemetry (how often the ring drains full vs
  // forced early by calls/returns). Gated on the self-observability
  // flag like vm.retire_batch_size: the atomic bumps are per flush, but
  // on the perf-gate path even one locked add per 64 ops is measurable,
  // and the flag is on exactly when a report will carry self_metrics.
  if (trace::Tracer::enabled()) {
    static metrics::Counter &Flushes =
        metrics::Registry::global().counter("hw.batched_flushes");
    static metrics::Histogram &Sizes =
        metrics::Registry::global().histogram("hw.batched_batch_size");
    Flushes.add();
    Sizes.record(Cols.Count);
  }
  if (EventSink)
    retireBatch<true>(Cols, RetireCursor);
  else
    retireBatch<false>(Cols, RetireCursor);
}

template <bool HasSink>
void CoreModel::retireBatch(const vm::RetireColumns &Cols,
                            const ir::Instruction *&RetireCursor) {
  const size_t Count = Cols.Count;
  if (Count == 0)
    return;
  const RetiredOp *Ops = Cols.Ops;
  const uint8_t *Classes = Cols.Classes;

  // Pass A: gather every memory access of the flush in program order
  // and walk the cache once. Valid because cache state never depends on
  // CoreStats, and the walk preserves the exact per-line access order
  // retireOne() would produce — so tags, stamps, and CacheStats come
  // out bit-identical, just without a call-and-return per op. The
  // compact (op index, request range) list keeps pass A store-free for
  // non-memory ops.
  //
  // accessBatch's same-line dedup is mirrored here, one step earlier:
  // a single-line access to the line the cache touched last is a
  // guaranteed L1 hit with no state effect beyond the hit count
  // (CacheSim.h explains why), so it never becomes a request at all —
  // MemRef.Num == 0 marks it for pass B. The mirror tracks exactly the
  // LastLineAddr evolution the submitted request stream produces
  // (filtered accesses leave it unchanged, a submitted request ends on
  // its last line, in accessBatch's fast and slow paths alike), so the
  // filter decides precisely the requests accessBatch's own fast path
  // would have absorbed.
  BatchReqs.clear();
  BatchMem.clear();
  {
    const unsigned LineShift = Cache.lineShift();
    uint64_t MirrorLine = Cache.lastLineAddr();
    for (size_t I = 0; I != Count; ++I) {
      OpClass C = OpClass(Classes[I]);
      if (C != OpClass::Load && C != OpClass::Store)
        continue;
      const RetiredOp &Op = Ops[I];
      uint32_t First = static_cast<uint32_t>(BatchReqs.size());
      if (Op.Lanes > 1 && Op.StrideBytes != 0) {
        uint32_t ElemBytes = Op.Bytes / Op.Lanes;
        for (unsigned Ln = 0; Ln != Op.Lanes; ++Ln)
          BatchReqs.push_back(
              {Op.Addr + static_cast<uint64_t>(Op.StrideBytes) * Ln, ElemBytes});
        const CacheAccessReq &LastReq = BatchReqs.back();
        MirrorLine = (LastReq.Addr + LastReq.Bytes - 1) >> LineShift;
        BatchMem.push_back({static_cast<uint32_t>(I), First,
                            static_cast<uint32_t>(BatchReqs.size()) - First});
        continue;
      }
      uint64_t Addr = Op.Addr;
      uint32_t Bytes = Op.Bytes ? Op.Bytes : 1;
      uint64_t FirstLine = Addr >> LineShift;
      uint64_t LastLine = (Addr + Bytes - 1) >> LineShift;
      if (FirstLine == LastLine && FirstLine == MirrorLine) {
        BatchMem.push_back({static_cast<uint32_t>(I), First, 0});
        continue;
      }
      MirrorLine = LastLine;
      BatchReqs.push_back({Addr, Bytes});
      BatchMem.push_back({static_cast<uint32_t>(I), First, 1});
    }
  }
  uint64_t Dram = Cache.stats().DramBytes;
  if (!BatchReqs.empty()) {
    BatchRes.resize(BatchReqs.size());
    Cache.accessBatch(BatchReqs.data(), BatchReqs.size(), BatchRes.data());
  }

  // The floor memo can be stale at flush entry (scalar-path retirements
  // from synthetic ops recompute the floor directly and bypass it);
  // re-keying once here, then on every DRAM change below, reproduces
  // the per-op `Dram != BwDramCached` check exactly, since Dram only
  // changes at memory ops. The memo lives in locals for the duration
  // of the flush (registers, not member reloads) and is stored back at
  // the end; the floor division is the same one retireOne() performs,
  // just not repeated when the key is unchanged.
  const double DramBpc = Cache.config().DramBytesPerCycle;
  uint64_t BwDram = Dram;
  double BwFloor = Dram == BwDramCached ? BwFloorCached
                                        : static_cast<double>(Dram) / DramBpc;

  // Pass B: per-op accounting in program order, with exactly the
  // double-accumulation sequence of retireOne() — bit-identical totals,
  // since fp addition is non-associative and the stats are the
  // contract. Without a sink nothing can observe CoreStats mid-flush,
  // so the accumulators live in a local copy (registers); with a sink
  // attached, PMU overflow handlers re-enter addCycles() between ops,
  // so every update goes straight through Stats, as retireOne() does.
  //
  // Two more sink-free shortcuts, both exact:
  //  - the retire cursor is only observable from inside the PMU chain,
  //    so it advances once per flush instead of once per op;
  //  - classes with zero FLOPs per lane skip the FpOpsActual/FpOpsSpec
  //    updates entirely — adding +0.0 to an accumulator that is never
  //    -0.0 (both start at +0.0 and only accumulate) is the identity.
  CoreStats Local;
  if constexpr (!HasSink)
    Local = Stats;
  CoreStats &S = HasSink ? Stats : Local;

  // Headroom for the worst case of every op being a new branch: keeps
  // the predictor probe in the loop below call-free (see fastPredState).
  ensureFastPred(Count);

  const double InstretF = Core.InstretFactor;
  const double FpSpecF = Core.FpSpecFactor;
  const uint32_t FlopMask = FlopClassMask;
  const double StallL1 = StallByLevel[static_cast<unsigned>(MemLevel::L1)];
  const MemRef *MemIt = BatchMem.data();

  for (size_t I = 0; I != Count; ++I) {
    unsigned Cl = Classes[I];
    OpClass C = OpClass(Cl);
    if constexpr (HasSink)
      RetireCursor = Ops[I].Inst;
    double Cycles = Ops[I].Lanes > 1 ? costFor(Ops[I]) : CostScalar[Cl];
    S.IssueCycles += Cycles;

    EventDeltas D;
    if constexpr (HasSink)
      D.Mode = CurrentMode;

    if (C == OpClass::Load || C == OpClass::Store) {
      const uint32_t Num = MemIt->Num;
      const uint32_t First = MemIt->First;
      ++MemIt;
      if (Num == 0) {
        // Pre-filtered same-line hit (pass A): book the L1 hit — the
        // fast path's only stats effect — and stall at L1 latency.
        // DRAM totals are untouched, so the floor memo stays keyed.
        Cache.noteSameLineHit();
        if (C == OpClass::Load) {
          Cycles += StallL1;
          S.MemStallCycles += StallL1;
        }
      } else {
        const CacheAccessResult *R = &BatchRes[First];
        MemLevel Deepest = R[0].Deepest;
        uint32_t L1Miss = R[0].L1Misses;
        uint32_t L2Miss = R[0].L2Misses;
        for (uint32_t A = 1; A < Num; ++A) {
          if (static_cast<int>(R[A].Deepest) > static_cast<int>(Deepest))
            Deepest = R[A].Deepest;
          L1Miss += R[A].L1Misses;
          L2Miss += R[A].L2Misses;
        }
        Dram = R[Num - 1].DramBytesAfter;
        // Bandwidth floor, memoized on the DRAM traffic total: the
        // division only reruns when a miss actually added bytes, and
        // the memo key is the value itself, so it can never go stale.
        if (Dram != BwDram) {
          BwDram = Dram;
          BwFloor = static_cast<double>(Dram) / DramBpc;
        }
        if (C == OpClass::Load) {
          double Stall = StallByLevel[static_cast<unsigned>(Deepest)];
          Cycles += Stall;
          S.MemStallCycles += Stall;
        }
        if constexpr (HasSink) {
          D.L1DMiss = L1Miss;
          D.L2Miss = L2Miss;
        }
      }
    }

    if (C == OpClass::Branch) {
      if (!predictAndTrain(fastPredState(Ops[I].Inst), Cols.Taken[I] != 0)) {
        Cycles += Core.BranchMissPenalty;
        S.BadSpecCycles += Core.BranchMissPenalty;
        ++S.BranchMispredicts;
        if constexpr (HasSink)
          D.BranchMispredict = 1;
      }
    }

    S.Cycles += Cycles;
    if (S.Cycles < BwFloor) {
      double CatchUp = BwFloor - S.Cycles;
      S.Cycles = BwFloor;
      S.BandwidthCycles += CatchUp;
      Cycles += CatchUp;
    }

    S.Instret += InstretF;
    ++S.RetiredIrOps;

    if ((FlopMask >> Cl) & 1u) {
      double Flops = FlopsPerLane[Cl] * Ops[I].Lanes;
      S.FpOpsActual += Flops;
      S.FpOpsSpec += Flops * FpSpecF;
      if constexpr (HasSink)
        D.FpOpsSpec = Flops * FpSpecF;
    }

    if constexpr (HasSink) {
      D.Cycles = Cycles;
      D.Instret = InstretF;
      EventSink(D);
    }
  }

  BwDramCached = BwDram;
  BwFloorCached = BwFloor;
  if constexpr (!HasSink) {
    Stats = Local;
    RetireCursor = Ops[Count - 1].Inst;
  }
}

void CoreModel::retireOne(const vm::RetiredOp &Op) {
  EventDeltas D;
  D.Mode = CurrentMode;
  double Cycles = costFor(Op);
  Stats.IssueCycles += Cycles;

  // Memory: walk the cache. Loads stall for the added latency (in-order
  // cores in full, OoO cores overlap it across Mlp outstanding misses);
  // stores retire through the store buffer and only pay issue cost plus
  // the DRAM bandwidth floor below.
  if (Op.Class == OpClass::Load || Op.Class == OpClass::Store) {
    uint64_t L1MissBefore = Cache.stats().L1Misses;
    uint64_t L2MissBefore = Cache.stats().L2Misses;
    MemLevel Deepest = MemLevel::L1;
    if (Op.Lanes > 1 && Op.StrideBytes != 0) {
      uint32_t ElemBytes = Op.Bytes / Op.Lanes;
      for (unsigned Ln = 0; Ln != Op.Lanes; ++Ln) {
        MemLevel Lv = Cache.access(
            Op.Addr + static_cast<uint64_t>(Op.StrideBytes) * Ln, ElemBytes);
        if (static_cast<int>(Lv) > static_cast<int>(Deepest))
          Deepest = Lv;
      }
    } else {
      Deepest = Cache.access(Op.Addr, Op.Bytes ? Op.Bytes : 1);
    }
    if (Op.Class == OpClass::Load) {
      double Stall = Cache.latencyFor(Deepest) / std::max(1.0, Core.Mlp);
      Cycles += Stall;
      Stats.MemStallCycles += Stall;
    }
    D.L1DMiss = Cache.stats().L1Misses - L1MissBefore;
    D.L2Miss = Cache.stats().L2Misses - L2MissBefore;
  }

  if (Op.Class == OpClass::Branch) {
    if (!predictBranch(Op)) {
      Cycles += Core.BranchMissPenalty;
      Stats.BadSpecCycles += Core.BranchMissPenalty;
      D.BranchMispredict = 1;
      ++Stats.BranchMispredicts;
    }
  }

  Stats.Cycles += Cycles;

  // DRAM bandwidth floor: cycles can never run ahead of the sustained
  // bandwidth needed for the traffic generated so far.
  double BwFloor =
      static_cast<double>(Cache.stats().DramBytes) / Cache.config().DramBytesPerCycle;
  if (Stats.Cycles < BwFloor) {
    double CatchUp = BwFloor - Stats.Cycles;
    Stats.Cycles = BwFloor;
    Stats.BandwidthCycles += CatchUp;
    Cycles += CatchUp;
  }

  double InstretDelta = Core.InstretFactor;
  Stats.Instret += InstretDelta;
  ++Stats.RetiredIrOps;

  // FLOP accounting for the counter-based (Advisor-like) estimator.
  double Flops = 0;
  switch (Op.Class) {
  case OpClass::FpAdd:
  case OpClass::FpMul:
  case OpClass::FpDiv:
    Flops = Op.Lanes;
    break;
  case OpClass::FpFma:
    Flops = 2.0 * Op.Lanes;
    break;
  default:
    break;
  }
  Stats.FpOpsActual += Flops;
  Stats.FpOpsSpec += Flops * Core.FpSpecFactor;

  if (EventSink) {
    D.Cycles = Cycles;
    D.Instret = InstretDelta;
    D.FpOpsSpec = Flops * Core.FpSpecFactor;
    EventSink(D);
  }
}
