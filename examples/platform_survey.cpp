//===- platform_survey.cpp - Probe every platform's PMU capabilities ------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// What miniperf's platform layer does at startup, for all four simulated
// platforms: identify the core from its CPU-id CSRs (no perf event
// discovery, §3.3), plan the counter group, and report which sampling
// strategy applies. Then run one tiny workload everywhere and compare.
//
//===----------------------------------------------------------------------===//

#include "miniperf/EventGrouper.h"
#include "miniperf/Session.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Microbench.h"

#include <cstdio>

using namespace mperf;
using namespace mperf::miniperf;

int main() {
  auto Db = hw::allPlatforms();

  std::printf("platform identification (by mvendorid/marchid, the way "
              "miniperf does it):\n");
  for (const hw::Platform &P : Db) {
    const hw::Platform *Found = detectPlatform(Db, P.Id);
    std::printf("  mvendorid=0x%llx -> %s (%s, isa %s)\n",
                static_cast<unsigned long long>(P.Id.Mvendorid),
                Found ? Found->CoreName.c_str() : "unknown",
                P.BoardName.c_str(), P.Id.Isa.c_str());
  }

  std::printf("\ncounter group plans (cycles+instructions, period 100k):\n");
  TextTable T;
  T.addHeader({"Platform", "Strategy", "Leader", "Group size"});
  for (const hw::Platform &P : Db) {
    GroupPlan Plan = planCyclesInstructionsGroup(P, 100000);
    std::string Strategy = !Plan.SamplingAvailable ? "counting only"
                           : Plan.UsesWorkaround   ? "grouping workaround"
                                                   : "direct sampling";
    T.addRow({P.CoreName, Strategy, Plan.LeaderDescription,
              std::to_string(Plan.Events.size())});
  }
  std::printf("%s", T.render().c_str());

  std::printf("\nsame triad kernel on every platform:\n");
  TextTable R;
  R.addHeader({"Platform", "cycles", "instructions", "IPC", "samples"});
  for (const hw::Platform &P : Db) {
    workloads::Microbench Triad = workloads::buildTriad(4096, 40);
    SessionOptions Opts;
    Opts.SamplePeriod = 30000;
    Session S(P, Opts);
    auto ROr = S.profile(*Triad.M, "main");
    if (!ROr) {
      std::fprintf(stderr, "  %s: %s\n", P.CoreName.c_str(),
                   ROr.errorMessage().c_str());
      continue;
    }
    R.addRow({P.CoreName, withCommas(ROr->Cycles),
              withCommas(ROr->Instructions), fixed(ROr->Ipc, 2),
              std::to_string(ROr->Samples.size())});
  }
  std::printf("%s", R.render().c_str());
  std::printf("\nnote the U74 row: zero samples — no overflow interrupts "
              "anywhere on that core (Table 1), so only counting works.\n");
  return 0;
}
