//===- MultiRun.cpp - Deterministic multi-instance interleaving ---------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "vm/MultiRun.h"

#include <thread>

using namespace mperf;
using namespace mperf::vm;

RoundRobin::RoundRobin(unsigned NumCores, uint64_t Quantum)
    : Quantum(Quantum ? Quantum : UINT64_MAX), Gates(NumCores),
      Done(NumCores, false) {
  for (unsigned I = 0; I != NumCores; ++I) {
    Gates[I].Parent = this;
    Gates[I].Core = I;
    Gates[I].Budget = this->Quantum;
  }
}

void RoundRobin::acquire(unsigned Core) {
  std::unique_lock<std::mutex> Lock(Mu);
  Cv.wait(Lock, [&] { return Turn == Core; });
}

void RoundRobin::rotateLocked(unsigned From) {
  unsigned N = numCores();
  unsigned Next = From;
  for (unsigned Step = 1; Step <= N; ++Step) {
    unsigned Cand = (From + Step) % N;
    if (!Done[Cand]) {
      Next = Cand;
      break;
    }
  }
  // All other cores done: Turn stays on From (which keeps running, or
  // is itself done and nobody waits).
  Turn = Next;
}

void RoundRobin::charge(unsigned Core, uint64_t Ops) {
  Gate &G = Gates[Core];
  if (G.Budget > Ops) {
    G.Budget -= Ops;
    return;
  }
  G.Budget = Quantum;
  std::lock_guard<std::mutex> Lock(Mu);
  rotateLocked(Core);
  Cv.notify_all();
}

void RoundRobin::finished(unsigned Core) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Done[Core])
    return;
  Done[Core] = true;
  if (Turn == Core)
    rotateLocked(Core);
  Cv.notify_all();
}

void RoundRobin::Gate::onRetire(const RetiredOp &Op) {
  Parent->acquire(Core);
  for (TraceConsumer *C : Downstream)
    C->onRetire(Op);
  Parent->charge(Core, 1);
}

void RoundRobin::Gate::onRetireBatch(const RetiredOp *Ops, size_t Count,
                                     const ir::Instruction *&RetireCursor) {
  if (Count == 0)
    return;
  // Wait for the turn, then deliver without the lock: only the turn
  // holder ever mutates shared simulation state, and the turn cannot
  // move while this core holds it.
  Parent->acquire(Core);
  for (TraceConsumer *C : Downstream)
    C->onRetireBatch(Ops, Count, RetireCursor);
  Parent->charge(Core, Count);
}

bool RoundRobin::Gate::wantsRetireColumns() const {
  for (const TraceConsumer *C : Downstream)
    if (C->wantsRetireColumns())
      return true;
  return false;
}

void RoundRobin::Gate::onRetireColumns(const RetireColumns &Cols,
                                       const ir::Instruction *&RetireCursor) {
  if (Cols.Count == 0)
    return;
  // Same turnstile discipline as onRetireBatch: the flush boundaries
  // (and so the charge sequence and every cross-core interleave point)
  // are identical in both delivery forms, which keeps cluster runs
  // bit-identical across timing tiers.
  Parent->acquire(Core);
  for (TraceConsumer *C : Downstream)
    C->onRetireColumns(Cols, RetireCursor);
  Parent->charge(Core, Cols.Count);
}

void RoundRobin::Gate::onCallEnter(const ir::Function &F) {
  for (TraceConsumer *C : Downstream)
    C->onCallEnter(F);
}

void RoundRobin::Gate::onCallExit(const ir::Function &F) {
  for (TraceConsumer *C : Downstream)
    C->onCallExit(F);
}

void mperf::vm::runOnThreads(std::vector<std::function<void()>> Bodies) {
  std::vector<std::thread> Threads;
  Threads.reserve(Bodies.size());
  for (std::function<void()> &B : Bodies)
    Threads.emplace_back(std::move(B));
  for (std::thread &T : Threads)
    T.join();
}
