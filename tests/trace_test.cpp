//===- trace_test.cpp - Self-observability tracer and metrics tests ------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Covers the observability layer's three contracts: the tracer is a
// no-op when disabled, its export is valid Chrome trace_event JSON even
// after concurrent writes and ring overflow, and turning it on does not
// change any deterministic sweep result.
//
//===----------------------------------------------------------------------===//

#include "driver/ScenarioMatrix.h"
#include "driver/SweepRunner.h"
#include "support/JSON.h"
#include "support/MetricPolicy.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace mperf;
using namespace mperf::driver;

namespace {

/// Scoped enable/disable so a failing test cannot leave the process
/// tracer on for unrelated suites.
struct TracerSession {
  TracerSession() {
    trace::Tracer::instance().clear();
    trace::Tracer::instance().enable();
  }
  ~TracerSession() { trace::Tracer::instance().disable(); }
};

/// Parses a Chrome trace document and returns its traceEvents array,
/// failing the test on malformed JSON or a missing array.
JsonValue parsedEvents(const std::string &Json) {
  auto DocOr = parseJson(Json);
  if (!DocOr) {
    ADD_FAILURE() << "trace does not parse: " << DocOr.errorMessage();
    return JsonValue::makeNull();
  }
  const JsonValue *Events = DocOr->find("traceEvents");
  if (!Events || !Events->isArray()) {
    ADD_FAILURE() << "trace has no traceEvents array";
    return JsonValue::makeNull();
  }
  return *Events;
}

size_t countByName(const JsonValue &Events, const std::string &Name) {
  size_t N = 0;
  for (const JsonValue &E : Events.elements()) {
    const JsonValue *V = E.find("name");
    N += V && V->isString() && V->asString() == Name ? 1 : 0;
  }
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(TracerTest, DisabledRecordsNothing) {
  trace::Tracer &T = trace::Tracer::instance();
  T.disable();
  T.clear();
  ASSERT_FALSE(trace::Tracer::enabled());

  trace::instant("never", "arg");
  trace::counter("never", 42);
  { trace::ScopedSpan S("never.span", "detail"); }
  trace::Tracer::setThreadName("never-named");

  EXPECT_EQ(T.numEvents(), 0u);
  EXPECT_EQ(T.numDropped(), 0u);

  // Even an empty export is a loadable document.
  JsonValue Events = parsedEvents(T.toChromeJson());
  EXPECT_TRUE(Events.isArray());
  EXPECT_EQ(Events.elements().size(), 0u);
}

TEST(TracerTest, SpanInstantCounterRoundTrip) {
  TracerSession Session;
  trace::Tracer &T = trace::Tracer::instance();

  { trace::ScopedSpan S("unit.span", "the-arg"); }
  trace::instant("unit.instant");
  trace::counter("unit.counter", 7.5);
  EXPECT_EQ(T.numEvents(), 3u);

  JsonValue Events = parsedEvents(T.toChromeJson());
  ASSERT_EQ(Events.elements().size(), 3u);
  EXPECT_EQ(countByName(Events, "unit.span"), 1u);
  EXPECT_EQ(countByName(Events, "unit.instant"), 1u);
  EXPECT_EQ(countByName(Events, "unit.counter"), 1u);

  for (const JsonValue &E : Events.elements()) {
    const JsonValue *Name = E.find("name");
    const JsonValue *Ph = E.find("ph");
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Ph, nullptr);
    ASSERT_TRUE(Ph->isString());
    const JsonValue *Ts = E.find("ts");
    ASSERT_NE(Ts, nullptr);
    EXPECT_TRUE(Ts->isNumber());
    if (Name->asString() == "unit.span") {
      EXPECT_EQ(Ph->asString(), "X");
      const JsonValue *Dur = E.find("dur");
      ASSERT_NE(Dur, nullptr);
      EXPECT_GE(Dur->asNumber(), 0.0);
      const JsonValue *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      const JsonValue *Detail = Args->find("detail");
      ASSERT_NE(Detail, nullptr);
      EXPECT_EQ(Detail->asString(), "the-arg");
    } else if (Name->asString() == "unit.instant") {
      EXPECT_EQ(Ph->asString(), "i");
    } else {
      EXPECT_EQ(Ph->asString(), "C");
      const JsonValue *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      const JsonValue *Value = Args->find("value");
      ASSERT_NE(Value, nullptr);
      EXPECT_DOUBLE_EQ(Value->asNumber(), 7.5);
    }
  }
}

TEST(TracerTest, OverlongNamesAndArgsTruncateSafely) {
  TracerSession Session;
  const std::string Long(300, 'x');
  trace::instant(Long.c_str(), Long);
  JsonValue Events = parsedEvents(trace::Tracer::instance().toChromeJson());
  ASSERT_EQ(Events.elements().size(), 1u);
  const JsonValue *Name = Events.elements()[0].find("name");
  ASSERT_NE(Name, nullptr);
  EXPECT_LT(Name->asString().size(), Long.size());
  EXPECT_EQ(Name->asString().substr(0, 4), "xxxx");
}

TEST(TracerTest, ConcurrentWritersProduceOneValidDocument) {
  TracerSession Session;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned PerThread = 200;

  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != NumThreads; ++T)
    Pool.emplace_back([T] {
      trace::Tracer::setThreadName("writer-" + std::to_string(T));
      for (unsigned I = 0; I != PerThread; ++I) {
        trace::ScopedSpan S("mt.span", "t" + std::to_string(T));
        trace::counter("mt.counter", I);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  trace::Tracer &Tr = trace::Tracer::instance();
  EXPECT_EQ(Tr.numEvents(), size_t(NumThreads) * PerThread * 2);
  EXPECT_EQ(Tr.numDropped(), 0u);

  JsonValue Events = parsedEvents(Tr.toChromeJson());
  EXPECT_EQ(countByName(Events, "mt.span"), size_t(NumThreads) * PerThread);
  EXPECT_EQ(countByName(Events, "mt.counter"),
            size_t(NumThreads) * PerThread);

  // Each writer exported under its own tid, and each got its
  // thread_name metadata record.
  std::set<double> Tids;
  for (const JsonValue &E : Events.elements()) {
    const JsonValue *Name = E.find("name");
    if (Name && Name->isString() && Name->asString() == "mt.span")
      Tids.insert(E.find("tid")->asNumber());
  }
  EXPECT_EQ(Tids.size(), size_t(NumThreads));
  EXPECT_EQ(countByName(Events, "thread_name"), size_t(NumThreads));
}

TEST(TracerTest, RingOverflowDropsOldestAndStillParses) {
  TracerSession Session;
  // Well past any plausible ring capacity on one thread.
  constexpr size_t Writes = 100000;
  for (size_t I = 0; I != Writes; ++I)
    trace::counter("flood", static_cast<double>(I));

  trace::Tracer &T = trace::Tracer::instance();
  EXPECT_LT(T.numEvents(), Writes);
  EXPECT_EQ(T.numEvents() + T.numDropped(), Writes);

  JsonValue Events = parsedEvents(T.toChromeJson());
  EXPECT_EQ(Events.elements().size(), T.numEvents());
  // The survivors are the newest ones: the last value written is there.
  double MaxValue = -1;
  for (const JsonValue &E : Events.elements()) {
    const JsonValue *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    MaxValue = std::max(MaxValue, Args->find("value")->asNumber());
  }
  EXPECT_DOUBLE_EQ(MaxValue, static_cast<double>(Writes - 1));
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  metrics::Registry &R = metrics::Registry::global();
  metrics::Counter &C1 = R.counter("test.stable_counter");
  metrics::Counter &C2 = R.counter("test.stable_counter");
  EXPECT_EQ(&C1, &C2);
  const uint64_t Before = C1.value();
  C2.add(3);
  EXPECT_EQ(C1.value(), Before + 3);

  metrics::Gauge &G = R.gauge("test.stable_gauge");
  G.set(0.25);
  EXPECT_DOUBLE_EQ(R.gauge("test.stable_gauge").value(), 0.25);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwo) {
  metrics::Registry &R = metrics::Registry::global();
  metrics::Histogram &H = R.histogram("test.hist_pow2");
  H.record(0);  // bucket 0
  H.record(1);  // bucket 1: [1,2)
  H.record(5);  // bucket 3: [4,8)
  H.record(64); // bucket 7: [64,128)
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 70u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(3), 1u);
  EXPECT_EQ(H.bucket(7), 1u);
  EXPECT_EQ(H.bucket(2), 0u);
}

TEST(MetricsTest, SnapshotDeltaIsExactForCountersAndHistograms) {
  metrics::Registry &R = metrics::Registry::global();
  metrics::Counter &C = R.counter("test.delta_counter");
  metrics::Histogram &H = R.histogram("test.delta_hist");
  R.gauge("test.delta_gauge").set(1.0);

  const metrics::Snapshot Begin = R.snapshot();
  C.add(17);
  H.record(9);
  H.record(10);
  R.gauge("test.delta_gauge").set(2.5);
  const metrics::Snapshot End = R.snapshot();

  const metrics::Snapshot D = metrics::Snapshot::delta(Begin, End);
  uint64_t CounterDelta = 0;
  for (const auto &[Name, Value] : D.Counters)
    if (Name == "test.delta_counter")
      CounterDelta = Value;
  EXPECT_EQ(CounterDelta, 17u);

  double GaugeEnd = -1;
  for (const auto &[Name, Value] : D.Gauges)
    if (Name == "test.delta_gauge")
      GaugeEnd = Value;
  EXPECT_DOUBLE_EQ(GaugeEnd, 2.5);

  bool FoundHist = false;
  for (const metrics::Snapshot::Hist &SH : D.Histograms)
    if (SH.Name == "test.delta_hist") {
      FoundHist = true;
      EXPECT_EQ(SH.Count, 2u);
      EXPECT_EQ(SH.Sum, 19u);
    }
  EXPECT_TRUE(FoundHist);

  // And the delta renders as one parseable JSON object.
  auto DocOr = parseJson(D.toJson());
  ASSERT_TRUE(bool(DocOr)) << DocOr.errorMessage();
  EXPECT_NE(DocOr->find("counters"), nullptr);
  EXPECT_NE(DocOr->find("gauges"), nullptr);
  EXPECT_NE(DocOr->find("histograms"), nullptr);
}

//===----------------------------------------------------------------------===//
// Shared advisory-key policy
//===----------------------------------------------------------------------===//

TEST(MetricPolicyTest, AdvisoryKeys) {
  EXPECT_TRUE(isAdvisoryMetricKey("host_seconds"));
  EXPECT_TRUE(isAdvisoryMetricKey("build_host_seconds"));
  EXPECT_TRUE(isAdvisoryMetricKey("exec_host_seconds"));
  EXPECT_TRUE(isAdvisoryMetricKey("program_cache.wait_host_ns"));
  EXPECT_TRUE(isAdvisoryMetricKey("parse_host_ms"));
  EXPECT_TRUE(isAdvisoryMetricKey("self_metrics"));
  EXPECT_FALSE(isAdvisoryMetricKey("cycles"));
  EXPECT_FALSE(isAdvisoryMetricKey("instructions"));
  EXPECT_FALSE(isAdvisoryMetricKey("samples"));
  EXPECT_FALSE(isAdvisoryMetricKey("host_seconds_total")); // not a suffix
}

//===----------------------------------------------------------------------===//
// Sweep integration: self_metrics block and trace-on/off identity
//===----------------------------------------------------------------------===//

namespace {

std::vector<Scenario> smallMatrix() {
  auto pick = [](const char *Name) {
    auto WOr = selectWorkloads(Name);
    EXPECT_TRUE(bool(WOr));
    return std::move(WOr->front());
  };
  return ScenarioMatrix()
      .addPlatform(hw::spacemitX60())
      .addWorkload(pick("triad"))
      .addWorkload(pick("memset"))
      .setAnalyses({"topdown"})
      .build();
}

} // namespace

TEST(SelfMetricsTest, SweepReportEmbedsConsistentSelfMetrics) {
  std::vector<Scenario> S = smallMatrix();
  SweepOptions O;
  O.Jobs = 2;
  SweepReport Report = SweepRunner(O).run(S);
  ASSERT_EQ(Report.numFailures(), 0u);

  auto DocOr = parseJson(Report.toJson());
  ASSERT_TRUE(bool(DocOr)) << DocOr.errorMessage();
  const JsonValue *Schema = DocOr->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), "miniperf-sweep-report/v6");

  const JsonValue *Self = DocOr->find("self_metrics");
  ASSERT_NE(Self, nullptr);
  ASSERT_TRUE(Self->isObject());
  const JsonValue *Counters = Self->find("counters");
  ASSERT_NE(Counters, nullptr);

  // The sweep's own delta must agree with the report's cache stats —
  // this run's traffic, not the process-lifetime totals.
  const JsonValue *Hits = Counters->find("program_cache.hits");
  const JsonValue *Misses = Counters->find("program_cache.misses");
  ASSERT_NE(Hits, nullptr);
  ASSERT_NE(Misses, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(Hits->asNumber()), Report.CacheHits);
  EXPECT_EQ(static_cast<uint64_t>(Misses->asNumber()),
            Report.WorkloadBuilds);

  const JsonValue *Scenarios = Counters->find("sweep.scenarios");
  ASSERT_NE(Scenarios, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(Scenarios->asNumber()), S.size());

  const JsonValue *Gauges = Self->find("gauges");
  ASSERT_NE(Gauges, nullptr);
  const JsonValue *Jobs = Gauges->find("sweep.jobs");
  ASSERT_NE(Jobs, nullptr);
  EXPECT_EQ(static_cast<unsigned>(Jobs->asNumber()), Report.Jobs);
  const JsonValue *Util = Gauges->find("sweep.worker_utilization");
  ASSERT_NE(Util, nullptr);
  EXPECT_GE(Util->asNumber(), 0.0);
  EXPECT_LE(Util->asNumber(), 1.0);

  // Compile-phase timings flowed up from vm::Program::compile.
  EXPECT_NE(Counters->find("vm.compile.lower_host_ns"), nullptr);
}

TEST(SelfMetricsTest, TracingDoesNotChangeSweepResults) {
  // The acceptance property: observability must be free of observer
  // effects on deterministic outputs. Every gateable metric — counts,
  // samples, serialized analyses — is bit-identical with tracing on.
  std::vector<Scenario> S = smallMatrix();
  SweepOptions O;
  O.Jobs = 2;

  trace::Tracer::instance().disable();
  SweepReport Off = SweepRunner(O).run(S);

  {
    TracerSession Session;
    SweepReport On = SweepRunner(O).run(S);

    ASSERT_EQ(Off.Results.size(), On.Results.size());
    for (size_t I = 0; I != Off.Results.size(); ++I) {
      const ScenarioResult &A = Off.Results[I];
      const ScenarioResult &B = On.Results[I];
      EXPECT_EQ(A.Name, B.Name);
      EXPECT_EQ(A.Failed, B.Failed) << A.Name;
      EXPECT_EQ(A.Profile.Cycles, B.Profile.Cycles) << A.Name;
      EXPECT_EQ(A.Profile.Instructions, B.Profile.Instructions) << A.Name;
      EXPECT_EQ(A.NumSamples, B.NumSamples) << A.Name;
      EXPECT_EQ(A.Profile.Interrupts, B.Profile.Interrupts) << A.Name;
      EXPECT_EQ(A.Profile.Vm.RetiredOps, B.Profile.Vm.RetiredOps) << A.Name;
      ASSERT_EQ(A.Profile.Counters.size(), B.Profile.Counters.size())
          << A.Name;
      for (size_t C = 0; C != A.Profile.Counters.size(); ++C) {
        EXPECT_EQ(A.Profile.Counters[C].Name, B.Profile.Counters[C].Name);
        EXPECT_EQ(A.Profile.Counters[C].Value, B.Profile.Counters[C].Value)
            << A.Name << " " << A.Profile.Counters[C].Name;
      }
      ASSERT_EQ(A.Analyses.size(), B.Analyses.size()) << A.Name;
      for (size_t An = 0; An != A.Analyses.size(); ++An) {
        EXPECT_EQ(A.Analyses[An].Json, B.Analyses[An].Json)
            << A.Name << " analysis " << A.Analyses[An].Name;
        EXPECT_EQ(A.Analyses[An].Text, B.Analyses[An].Text)
            << A.Name << " analysis " << A.Analyses[An].Name;
      }
    }

    // And the traced sweep left a loadable trace with the scenario
    // spans in it.
    JsonValue Events =
        parsedEvents(trace::Tracer::instance().toChromeJson());
    EXPECT_GE(countByName(Events, "scenario"), S.size());
    EXPECT_GE(countByName(Events, "scenario.exec"), S.size());
  }
}
