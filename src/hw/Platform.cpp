//===- Platform.cpp - The evaluated platforms ---------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Calibration notes: the per-class costs are reciprocal throughputs
// chosen so that the paper's headline shapes reproduce —
//  * X60 runs the database workload at IPC ~0.8-0.9 and the vectorized
//    matmul at ~1.5-1.7 GFLOP/s (strided B-column loads pay per lane),
//  * the x86 reference runs the same workload at IPC ~3-3.4 while
//    retiring ~1.8x the instructions (InstretFactor models ISA lowering),
//  * the X60 memory roof lands at ~3.16 bytes/cycle (memset benchmark).
//
//===----------------------------------------------------------------------===//

#include "hw/Platform.h"

#include <cctype>

using namespace mperf;
using namespace mperf::hw;

static std::map<uint16_t, EventKind> commonRiscvEvents() {
  return {
      {VE_L1D_MISS, EventKind::L1DMiss},
      {VE_L2_MISS, EventKind::L2Miss},
      {VE_BRANCH_MISS, EventKind::BranchMispredict},
      {VE_FP_OPS_SPEC, EventKind::FpOpsSpec},
  };
}

Platform mperf::hw::spacemitX60() {
  Platform P;
  P.CoreName = "SpacemiT X60";
  P.BoardName = "Banana Pi F3";
  P.Id = CpuId{0x710, 0x8000000058000001, 0x1000000049772200, "rv64gcv"};

  P.Core.Name = P.CoreName;
  P.Core.FreqGHz = 1.6;
  P.Core.OutOfOrder = false;
  P.Core.Mlp = 1.2; // small in-order overlap from the load queue
  P.Core.CostIntAlu = 0.7;
  P.Core.CostIntMul = 1.0;
  P.Core.CostIntDiv = 12.0;
  P.Core.CostFpAdd = 1.0;
  P.Core.CostFpMul = 1.0;
  P.Core.CostFpFma = 1.0;
  P.Core.CostFpDiv = 16.0;
  P.Core.CostBranch = 0.7;
  P.Core.CostCall = 2.5;
  P.Core.CostLoad = 0.7;
  P.Core.CostStore = 0.7;
  P.Core.CostOther = 0.7;
  P.Core.VecOpCost = 2.0;          // half-width RVV datapath
  P.Core.VecMemCost = 2.0;
  P.Core.VecStridedLaneCost = 0.7; // strided/gather: per-lane
  P.Core.BranchMissPenalty = 12.0;
  P.Core.InstretFactor = 1.0;
  P.Core.FpSpecFactor = 1.35;

  // L1 hit latency models the in-order load-to-use stall.
  P.Cache.L1 = {32 * 1024, 8, 64, 1.6};
  P.Cache.L2 = {512 * 1024, 8, 64, 14};
  P.Cache.DramLatency = 90;
  P.Cache.DramBytesPerCycle = 3.16; // matches the memset benchmark roof

  P.PmuCaps.NumHpmCounters = 29;
  P.PmuCaps.VendorEvents = commonRiscvEvents();
  P.PmuCaps.VendorEvents[VE_U_MODE_CYCLE] = EventKind::UModeCycles;
  P.PmuCaps.VendorEvents[VE_M_MODE_CYCLE] = EventKind::MModeCycles;
  P.PmuCaps.VendorEvents[VE_S_MODE_CYCLE] = EventKind::SModeCycles;
  // The documented limitation: only the non-standard mode-cycle counters
  // can raise overflow interrupts; mcycle/minstret cannot.
  P.PmuCaps.SamplableEvents = {EventKind::UModeCycles, EventKind::MModeCycles,
                               EventKind::SModeCycles};

  P.Target = transform::TargetInfo::rv64gcv(256);

  P.TheoreticalFlopsPerCycle = 16; // 2 inst/cycle x 8 SP FLOP/vector inst
  P.FlopsDerivation = "2 instr/cycle x 8 SP FLOP/vector instr (RVV 1.0, "
                      "VLEN 256)";

  P.OutOfOrder = false;
  P.RvvVersion = "1.0";
  P.OverflowSupport = "Limited";
  P.UpstreamLinux = "No";
  return P;
}

Platform mperf::hw::sifiveU74() {
  Platform P;
  P.CoreName = "SiFive U74";
  P.BoardName = "VisionFive II";
  P.Id = CpuId{0x489, 0x8000000000000007, 0x4210427, "rv64gc"};

  P.Core.Name = P.CoreName;
  P.Core.FreqGHz = 1.5;
  P.Core.OutOfOrder = false;
  P.Core.Mlp = 1.0;
  P.Core.CostIntAlu = 0.55;
  P.Core.CostIntMul = 1.0;
  P.Core.CostIntDiv = 14.0;
  P.Core.CostFpAdd = 1.2;
  P.Core.CostFpMul = 1.2;
  P.Core.CostFpFma = 1.2;
  P.Core.CostFpDiv = 18.0;
  P.Core.CostBranch = 0.6;
  P.Core.CostCall = 2.0;
  P.Core.CostLoad = 0.65;
  P.Core.CostStore = 0.65;
  P.Core.CostOther = 0.55;
  P.Core.VecOpCost = 0;            // no vector unit
  P.Core.VecMemCost = 0;
  P.Core.VecStridedLaneCost = 0;
  P.Core.BranchMissPenalty = 6.0;
  P.Core.InstretFactor = 1.0;
  P.Core.FpSpecFactor = 1.3;

  P.Cache.L1 = {32 * 1024, 8, 64, 0};
  P.Cache.L2 = {2 * 1024 * 1024, 16, 64, 21};
  P.Cache.DramLatency = 110;
  P.Cache.DramBytesPerCycle = 2.2;

  P.PmuCaps.NumHpmCounters = 2; // U74 implements few hpm counters
  P.PmuCaps.VendorEvents = commonRiscvEvents();
  P.PmuCaps.SamplableEvents = {}; // no overflow interrupt support at all

  P.Target = transform::TargetInfo::rv64gc();

  P.TheoreticalFlopsPerCycle = 2; // one scalar FMA per cycle
  P.FlopsDerivation = "1 scalar FMA/cycle (no vector unit)";

  P.OutOfOrder = false;
  P.RvvVersion = "Not supported";
  P.OverflowSupport = "No";
  P.UpstreamLinux = "Yes";
  return P;
}

Platform mperf::hw::theadC910() {
  Platform P;
  P.CoreName = "T-Head C910";
  P.BoardName = "Lichee Pi 4A";
  P.Id = CpuId{0x5b7, 0x0, 0x0, "rv64gcv0p7"};

  P.Core.Name = P.CoreName;
  P.Core.FreqGHz = 1.85;
  P.Core.OutOfOrder = true;
  P.Core.Mlp = 4.0;
  P.Core.CostIntAlu = 0.34;
  P.Core.CostIntMul = 0.5;
  P.Core.CostIntDiv = 10.0;
  P.Core.CostFpAdd = 0.5;
  P.Core.CostFpMul = 0.5;
  P.Core.CostFpFma = 0.5;
  P.Core.CostFpDiv = 12.0;
  P.Core.CostBranch = 0.34;
  P.Core.CostCall = 1.0;
  P.Core.CostLoad = 0.4;
  P.Core.CostStore = 0.4;
  P.Core.CostOther = 0.34;
  P.Core.VecOpCost = 1.0;          // RVV 0.7.1, 128-bit datapath
  P.Core.VecMemCost = 1.0;
  P.Core.VecStridedLaneCost = 0.6;
  P.Core.BranchMissPenalty = 10.0;
  P.Core.InstretFactor = 1.0;
  P.Core.FpSpecFactor = 1.35;

  P.Cache.L1 = {64 * 1024, 2, 64, 0};
  P.Cache.L2 = {1024 * 1024, 16, 64, 18};
  P.Cache.DramLatency = 100;
  P.Cache.DramBytesPerCycle = 4.0;

  P.PmuCaps.NumHpmCounters = 29;
  P.PmuCaps.VendorEvents = commonRiscvEvents();
  P.PmuCaps.VendorEvents[VE_CYCLES] = EventKind::Cycles;
  P.PmuCaps.VendorEvents[VE_INSTRET] = EventKind::Instret;
  // Full Sscofpmf-style overflow support.
  P.PmuCaps.SamplableEvents = {
      EventKind::Cycles,      EventKind::Instret,
      EventKind::L1DMiss,     EventKind::L2Miss,
      EventKind::BranchMispredict, EventKind::FpOpsSpec};

  P.Target = transform::TargetInfo::rv64gcv(128);

  P.TheoreticalFlopsPerCycle = 8; // 2 inst/cycle x 4 SP FLOP (VLEN 128)
  P.FlopsDerivation = "2 instr/cycle x 4 SP FLOP/vector instr (RVV 0.7.1, "
                      "VLEN 128)";

  P.OutOfOrder = true;
  P.RvvVersion = "0.7.1";
  P.OverflowSupport = "Yes";
  P.UpstreamLinux = "Partial";
  return P;
}

Platform mperf::hw::theadC906() {
  Platform P;
  P.CoreName = "T-Head C906";
  P.BoardName = "Allwinner D1 (Lichee RV)";
  // Same T-Head mvendorid as the C910; marchid tells them apart, which
  // is exactly why identification reads both CSRs.
  P.Id = CpuId{0x5b7, 0x906, 0x0, "rv64gcv0p7"};

  P.Core.Name = P.CoreName;
  P.Core.FreqGHz = 1.0;
  P.Core.OutOfOrder = false;
  P.Core.Mlp = 1.0; // single-issue, blocking loads
  // Single-issue: nothing retires faster than one op per cycle.
  P.Core.CostIntAlu = 1.0;
  P.Core.CostIntMul = 2.0;
  P.Core.CostIntDiv = 18.0;
  P.Core.CostFpAdd = 2.0;
  P.Core.CostFpMul = 2.0;
  P.Core.CostFpFma = 2.0;
  P.Core.CostFpDiv = 24.0;
  P.Core.CostBranch = 1.0;
  P.Core.CostCall = 3.0;
  P.Core.CostLoad = 1.0;
  P.Core.CostStore = 1.0;
  P.Core.CostOther = 1.0;
  P.Core.VecOpCost = 2.0;          // 128-bit RVV 0.7.1 datapath
  P.Core.VecMemCost = 2.0;
  P.Core.VecStridedLaneCost = 1.0;
  P.Core.BranchMissPenalty = 5.0; // short in-order pipeline
  P.Core.InstretFactor = 1.0;
  P.Core.FpSpecFactor = 1.3;

  P.Cache.L1 = {32 * 1024, 4, 64, 1.0};
  P.Cache.L2 = {128 * 1024, 8, 64, 24};
  P.Cache.DramLatency = 130; // DDR3 on the D1
  P.Cache.DramBytesPerCycle = 1.4;

  P.PmuCaps.NumHpmCounters = 4;
  P.PmuCaps.VendorEvents = commonRiscvEvents();
  P.PmuCaps.SamplableEvents = {}; // no Sscofpmf: counting only

  P.Target = transform::TargetInfo::rv64gcv(128);

  P.TheoreticalFlopsPerCycle = 4; // 1 inst/cycle x 4 SP FLOP (VLEN 128)
  P.FlopsDerivation = "1 instr/cycle x 4 SP FLOP/vector instr (RVV "
                      "0.7.1, VLEN 128, single-issue)";

  P.OutOfOrder = false;
  P.RvvVersion = "0.7.1";
  P.OverflowSupport = "No";
  P.UpstreamLinux = "Partial";
  return P;
}

Platform mperf::hw::intelI5_1135G7() {
  Platform P;
  P.CoreName = "Intel Core i5-1135G7";
  P.BoardName = "Laptop (Tiger Lake)";
  // Synthetic id block: the x86 reference is modelled through the same
  // simulation stack; 0x8086 marks it as non-RISC-V.
  P.Id = CpuId{0x8086, 0x1, 0x1, "x86-64-avx2"};

  P.Core.Name = P.CoreName;
  P.Core.FreqGHz = 4.2; // single-core turbo
  P.Core.OutOfOrder = true;
  P.Core.Mlp = 12.0;
  P.Core.CostIntAlu = 0.2;
  P.Core.CostIntMul = 0.25;
  P.Core.CostIntDiv = 6.0;
  P.Core.CostFpAdd = 0.4;
  P.Core.CostFpMul = 0.4;
  P.Core.CostFpFma = 0.5;
  P.Core.CostFpDiv = 5.0;
  P.Core.CostBranch = 0.32;
  P.Core.CostCall = 0.9;
  P.Core.CostLoad = 0.55;
  P.Core.CostStore = 0.4;
  P.Core.CostOther = 0.2;
  P.Core.VecOpCost = 0.5;           // two 256-bit FMA pipes
  P.Core.VecMemCost = 0.5;
  P.Core.VecStridedLaneCost = 0.05; // AVX2 gathers are fast-ish
  P.Core.BranchMissPenalty = 12.0; // TAGE-class predictor recovers fast
  P.Core.InstretFactor = 1.85; // x86 codegen retires more instructions
  // Fig. 4's 47.72/34.06 = 1.40 methodology gap: the raw counter factor
  // is slightly higher because the counter-based tool divides by whole-
  // program time rather than region time.
  P.Core.FpSpecFactor = 1.55;

  P.Cache.L1 = {48 * 1024, 12, 64, 1.5}; // mostly hidden by the OoO window
  P.Cache.L2 = {1280 * 1024, 20, 64, 13};
  P.Cache.DramLatency = 55; // L3 + prefetchers folded in
  P.Cache.DramBytesPerCycle = 12.0;

  P.PmuCaps.NumHpmCounters = 8;
  P.PmuCaps.VendorEvents = commonRiscvEvents();
  P.PmuCaps.VendorEvents[VE_CYCLES] = EventKind::Cycles;
  P.PmuCaps.VendorEvents[VE_INSTRET] = EventKind::Instret;
  P.PmuCaps.SamplableEvents = {
      EventKind::Cycles,      EventKind::Instret,
      EventKind::L1DMiss,     EventKind::L2Miss,
      EventKind::BranchMispredict, EventKind::FpOpsSpec};

  P.Target = transform::TargetInfo::x86Avx2();

  P.TheoreticalFlopsPerCycle = 32; // 2 FMA ports x 8 lanes x 2 FLOP
  P.FlopsDerivation = "2 FMA ports x 8 SP lanes x 2 FLOP (AVX2)";

  P.OutOfOrder = true;
  P.RvvVersion = "n/a (AVX2)";
  P.OverflowSupport = "Yes";
  P.UpstreamLinux = "Yes";
  return P;
}

Cluster mperf::hw::makeCluster(const Platform &P, unsigned NumCores,
                               const std::string &KeyBase) {
  Cluster C;
  std::string Base = KeyBase;
  if (Base.empty())
    for (char Ch : P.CoreName)
      if (std::isalnum(static_cast<unsigned char>(Ch)))
        Base += static_cast<char>(std::tolower(static_cast<unsigned char>(Ch)));
  C.Key = Base + "x" + std::to_string(NumCores);
  C.Name = std::to_string(NumCores) + "x " + P.CoreName;
  C.Cores.assign(NumCores, P);
  // The cores share the capacity and bandwidth one of them used to own:
  // that is the contention the cluster scenarios exist to expose.
  C.SharedL2Config = P.Cache.L2;
  C.DramLatency = P.Cache.DramLatency;
  C.DramBytesPerCycle = P.Cache.DramBytesPerCycle;
  return C;
}

Cluster mperf::hw::clusterC906x4() {
  Cluster C = makeCluster(theadC906(), 4, "c906");
  C.Name = "4x T-Head C906";
  return C;
}

Cluster mperf::hw::clusterU74X60() {
  Cluster C;
  C.Key = "u74x60";
  C.Name = "2x SiFive U74 + 2x SpacemiT X60";
  // Representative core first: the vector-less U74, so the shared
  // Program compiles scalar and runs on every core of the mix.
  Platform U74 = sifiveU74();
  Platform X60 = spacemitX60();
  C.Cores = {U74, U74, X60, X60};
  C.SharedL2Config = U74.Cache.L2; // the big cores' 2 MiB, now shared
  C.DramLatency = 100;
  C.DramBytesPerCycle = 4.0; // cluster fabric, split fairly four ways
  return C;
}

Cluster mperf::hw::clusterX60x2() {
  Cluster C = makeCluster(spacemitX60(), 2, "x60");
  C.Name = "2x SpacemiT X60";
  return C;
}

std::vector<Cluster> mperf::hw::allClusters() {
  return {clusterC906x4(), clusterU74X60(), clusterX60x2()};
}

const Cluster *mperf::hw::clusterByKey(const std::vector<Cluster> &Db,
                                       const std::string &Key) {
  for (const Cluster &C : Db)
    if (C.Key == Key)
      return &C;
  return nullptr;
}

std::vector<Platform> mperf::hw::allPlatforms() {
  return {sifiveU74(), theadC910(), spacemitX60(), intelI5_1135G7(),
          theadC906()};
}

const Platform *mperf::hw::platformById(const std::vector<Platform> &Db,
                                        const CpuId &Id) {
  for (const Platform &P : Db)
    if (P.Id.Mvendorid == Id.Mvendorid && P.Id.Marchid == Id.Marchid)
      return &P;
  return nullptr;
}
