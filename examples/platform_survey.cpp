//===- platform_survey.cpp - Probe every platform's PMU capabilities ------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// What miniperf's platform layer does at startup, for every simulated
// platform: identify the core from its CPU-id CSRs (no perf event
// discovery, §3.3), plan the counter group, and report which sampling
// strategy applies. Then hand one tiny workload to the scenario-sweep
// driver and run it on every platform concurrently.
//
//===----------------------------------------------------------------------===//

#include "driver/ScenarioMatrix.h"
#include "driver/SweepRunner.h"
#include "miniperf/EventGrouper.h"
#include "support/Format.h"
#include "support/JSON.h"
#include "support/Table.h"

#include <cstdio>

using namespace mperf;
using namespace mperf::driver;
using namespace mperf::miniperf;

int main() {
  auto Db = hw::allPlatforms();

  std::printf("platform identification (by mvendorid/marchid, the way "
              "miniperf does it):\n");
  for (const hw::Platform &P : Db) {
    const hw::Platform *Found = detectPlatform(Db, P.Id);
    std::printf("  mvendorid=0x%llx marchid=0x%llx -> %s (%s, isa %s)\n",
                static_cast<unsigned long long>(P.Id.Mvendorid),
                static_cast<unsigned long long>(P.Id.Marchid),
                Found ? Found->CoreName.c_str() : "unknown",
                P.BoardName.c_str(), P.Id.Isa.c_str());
  }

  std::printf("\ncounter group plans (cycles+instructions, period 100k):\n");
  TextTable T;
  T.addHeader({"Platform", "Strategy", "Leader", "Group size"});
  for (const hw::Platform &P : Db) {
    GroupPlan Plan = planCyclesInstructionsGroup(P, 100000);
    std::string Strategy = !Plan.SamplingAvailable ? "counting only"
                           : Plan.UsesWorkaround   ? "grouping workaround"
                                                   : "direct sampling";
    T.addRow({P.CoreName, Strategy, Plan.LeaderDescription,
              std::to_string(Plan.Events.size())});
  }
  std::printf("%s", T.render().c_str());

  // The sweep driver replaces the hand-rolled per-platform loop: same
  // triad kernel everywhere, one worker per platform, with the topdown
  // analysis attached so the report carries each core's retiring share.
  std::printf("\nsame triad kernel on every platform (sweep driver, "
              "concurrent):\n");
  std::vector<Scenario> Scenarios =
      ScenarioMatrix()
          .addPlatforms(Db)
          .addWorkloads(*selectWorkloads("triad"))
          .addSamplePeriod(30000)
          .setAnalyses({"topdown"})
          .build();
  SweepOptions Opts;
  Opts.Jobs = 0; // all cores
  SweepReport Report = SweepRunner(Opts).run(Scenarios);

  TextTable R;
  R.addHeader({"Platform", "cycles", "instructions", "IPC", "samples",
               "retiring"});
  for (const ScenarioResult &Res : Report.Results) {
    if (Res.Failed) {
      std::fprintf(stderr, "  %s: %s\n", Res.PlatformName.c_str(),
                   Res.Error.c_str());
      continue;
    }
    // The embedded analysis document is plain JSON: pull one number
    // back out the same way external tooling would.
    std::string Retiring = "-";
    for (const AnalysisRecord &A : Res.Analyses) {
      if (A.Name != "topdown" || A.Failed)
        continue;
      auto DocOr = parseJson(A.Json);
      if (DocOr)
        if (const JsonValue *V = DocOr->find("retiring"))
          Retiring = percent(V->asNumber());
    }
    R.addRow({Res.PlatformName, withCommas(Res.Profile.Cycles),
              withCommas(Res.Profile.Instructions),
              fixed(Res.Profile.Ipc, 2), std::to_string(Res.NumSamples),
              Retiring});
  }
  std::printf("%s", R.render().c_str());
  std::printf("\nnote the U74 and C906 rows: zero samples — no overflow "
              "interrupts on those cores (Table 1), so only counting "
              "works.\n");
  std::printf("(%zu scenarios in %s s with %u jobs — the sweep driver's "
              "whole point)\n",
              Report.Results.size(), fixed(Report.HostSeconds, 2).c_str(),
              Report.Jobs);
  return Report.numFailures() == 0 ? 0 : 1;
}
