//===- RtValue.h - Runtime values of the interpreter -----------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's register file entry: a scalar integer/pointer,
/// a scalar double, or up to MaxLanes vector lanes of either.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_VM_RTVALUE_H
#define MPERF_VM_RTVALUE_H

#include <array>
#include <cstdint>

namespace mperf {
namespace vm {

/// Widest supported vector: 512-bit of f32 (ablation configs use it).
constexpr unsigned MaxLanes = 16;

/// One runtime value. Scalars live in lane 0.
struct RtValue {
  std::array<uint64_t, MaxLanes> I{};
  std::array<double, MaxLanes> F{};

  static RtValue ofInt(uint64_t V) {
    RtValue R;
    R.I[0] = V;
    return R;
  }
  static RtValue ofFp(double V) {
    RtValue R;
    R.F[0] = V;
    return R;
  }

  uint64_t asInt() const { return I[0]; }
  double asFp() const { return F[0]; }
};

} // namespace vm
} // namespace mperf

#endif // MPERF_VM_RTVALUE_H
