//===- SweepRunner.h - Concurrent scenario execution -----------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a list of Scenarios on a std::thread pool, one complete
/// simulation stack (Module, Interpreter, CoreModel, Pmu, SBI,
/// perf_event, Session) per scenario, so workers share no mutable state.
/// Every simulated platform is itself deterministic, which gives the
/// sweep its defining property: results are bit-identical at any job
/// count, only wall-clock changes. Failures (build errors, traps, fuel
/// exhaustion) are captured per scenario and never abort the sweep.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_DRIVER_SWEEPRUNNER_H
#define MPERF_DRIVER_SWEEPRUNNER_H

#include "driver/SweepReport.h"

namespace mperf {
namespace driver {

class ProgramCache;

/// Execution knobs of one sweep.
struct SweepOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  unsigned Jobs = 1;
  /// Keep per-scenario sample vectors in the report (off by default:
  /// a wide matrix times a 64k-entry ring buffer is real memory).
  bool KeepSamples = false;
  /// Share compiled workload Programs across scenarios through a
  /// ProgramCache, building each distinct (workload, variant,
  /// vector-signature) key once per sweep. Off rebuilds per scenario —
  /// results are bit-identical either way (the differential tests
  /// assert it); the knob exists for exactly that comparison.
  bool ShareWorkloadBuilds = true;
  /// Progress callback, invoked serialized (under a lock) as scenarios
  /// finish — completion order, not matrix order.
  std::function<void(const ScenarioResult &, size_t Done, size_t Total)>
      OnResult;
};

/// Runs scenario lists; stateless between run() calls.
class SweepRunner {
public:
  explicit SweepRunner(SweepOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Executes every scenario and returns the report in matrix order.
  SweepReport run(const std::vector<Scenario> &Scenarios) const;

  /// Threads run() will use for \p NumScenarios scenarios.
  unsigned effectiveJobs(size_t NumScenarios) const;

private:
  /// \p Cache is the sweep-wide build cache, or null when sharing is
  /// disabled (each scenario then compiles privately).
  ScenarioResult runScenario(const Scenario &S, ProgramCache *Cache) const;

  SweepOptions Opts;
};

} // namespace driver
} // namespace mperf

#endif // MPERF_DRIVER_SWEEPRUNNER_H
