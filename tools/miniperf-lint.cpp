//===- miniperf-lint.cpp - Static verification CLI -----------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// Runs the full static verification stack — parser, SSA verifier,
// micro-op lowering cross-checker — and prints file:line diagnostics:
//
//   miniperf-lint FILE.mir [FILE2.mir ...]
//       Parse each textual IR module, verify it, compile it into a
//       vm::Program and cross-check the lowered micro-ops.
//
//   miniperf-lint --workloads [--scale N]
//       Sweep every registered workload x platform x {scalar,vector}
//       build through the same checks. This is the ctest entry that
//       keeps the builders and the vectorizer honest.
//
// Exit status: 0 when everything verifies, 1 on any diagnostic, 2 on
// usage/IO errors. All diagnostics are printed, not just the first.
//
//===----------------------------------------------------------------------===//

#include "driver/Scenario.h"
#include "hw/Platform.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "vm/LowerCheck.h"
#include "vm/Program.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mperf;

namespace {

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "miniperf-lint: %s\n", Message.c_str());
  std::exit(2);
}

void printUsage() {
  std::printf("usage: miniperf-lint FILE.mir [FILE2.mir ...]\n"
              "       miniperf-lint --workloads [--scale N]\n"
              "\n"
              "Statically verifies textual IR modules or every builtin\n"
              "workload build: parser -> SSA verifier -> micro-op\n"
              "lowering cross-checker. Prints file:line diagnostics and\n"
              "exits non-zero when anything fails to verify.\n");
}

int Diagnostics = 0;

void diag(const std::string &Where, const std::string &Message) {
  std::fprintf(stderr, "%s: %s\n", Where.c_str(), Message.c_str());
  ++Diagnostics;
}

/// Verifier + lowering checks over an already-parsed module. Runs the
/// checks explicitly (not via the MPERF_VERIFY knob) — lint exists to
/// verify, whatever the environment says.
void checkModule(const std::string &Where, std::unique_ptr<ir::Module> M) {
  if (Error E = ir::verifyModule(*M)) {
    diag(Where, E.message());
    return;
  }
  auto ProgOr = vm::Program::compile(std::move(M));
  if (!ProgOr) {
    diag(Where, ProgOr.errorMessage());
    return;
  }
  if (Error E = vm::checkProgramLowering(**ProgOr))
    diag(Where, E.message());
}

void lintFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    die("cannot open '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Text = SS.str();

  auto ModOr = ir::parseModule(Text, Path);
  if (!ModOr) {
    diag(Path, ModOr.errorMessage());
    return;
  }
  checkModule(Path, std::move(*ModOr));
}

int lintWorkloads(unsigned Scale) {
  std::vector<hw::Platform> Platforms = hw::allPlatforms();
  std::vector<driver::WorkloadDesc> Workloads =
      driver::standardWorkloads(Scale);

  unsigned Checked = 0;
  for (const hw::Platform &P : Platforms) {
    std::string PKey = driver::platformKey(P);
    for (const driver::WorkloadDesc &W : Workloads) {
      for (bool Vectorize : {false, true}) {
        std::string Where = W.Name + "@" + PKey +
                            (Vectorize ? "+vec" : "") + " (" + W.Variant +
                            ")";
        auto CWOr = W.Compile(P.Target, Vectorize);
        if (!CWOr) {
          diag(Where, CWOr.errorMessage());
          continue;
        }
        const vm::Program &Prog = *CWOr->Prog;
        if (Error E = ir::verifyModule(Prog.module())) {
          diag(Where, E.message());
          continue;
        }
        if (Error E = vm::checkProgramLowering(Prog)) {
          diag(Where, E.message());
          continue;
        }
        ++Checked;
      }
    }
  }
  std::printf("miniperf-lint: %u workload builds verified (%zu platforms x "
              "%zu workloads x scalar/vector), %d diagnostic%s\n",
              Checked, Platforms.size(), Workloads.size(), Diagnostics,
              Diagnostics == 1 ? "" : "s");
  return Diagnostics ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Workloads = false;
  unsigned Scale = 1;
  std::vector<std::string> Files;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "--workloads") {
      Workloads = true;
      continue;
    }
    if (Arg == "--scale") {
      if (I + 1 == argc)
        die("--scale requires a value");
      Scale = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
      if (Scale == 0)
        die("--scale must be positive");
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-')
      die("unknown option '" + Arg + "'");
    Files.push_back(Arg);
  }

  if (Workloads && !Files.empty())
    die("--workloads does not take file arguments");
  if (!Workloads && Files.empty()) {
    printUsage();
    return 2;
  }

  if (Workloads)
    return lintWorkloads(Scale);

  for (const std::string &F : Files)
    lintFile(F);
  if (!Diagnostics)
    std::printf("miniperf-lint: %zu module%s verified, 0 diagnostics\n",
                Files.size(), Files.size() == 1 ? "" : "s");
  return Diagnostics ? 1 : 0;
}
