//===- LoopVectorizer.cpp - Innermost loop vectorization ---------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "transform/LoopVectorizer.h"
#include "transform/Cloning.h"

#include <algorithm>
#include <map>
#include <optional>

using namespace mperf;
using namespace mperf::transform;
using namespace mperf::ir;

namespace {

/// Affine stride of an address expression with respect to the loop IV:
/// stride = Const * (Scale ? value(Scale) : 1) bytes per IV step.
struct StrideInfo {
  bool Valid = false;
  int64_t Const = 0;
  Value *Scale = nullptr; // loop-invariant runtime factor, may be null

  bool isInvariant() const { return Valid && Const == 0 && !Scale; }
  bool isConstant() const { return Valid && !Scale; }
};

/// All facts gathered about one vectorizable loop candidate.
struct LoopCandidate {
  BasicBlock *Preheader = nullptr;
  BasicBlock *Body = nullptr; // single block: header == latch
  BasicBlock *Exit = nullptr;
  Instruction *IndVar = nullptr;     // phi i64
  Instruction *IndNext = nullptr;    // add(iv, 1)
  Instruction *LatchCmp = nullptr;   // icmp slt/ult iv.next, bound
  Value *Start = nullptr;            // iv preheader incoming
  Value *Bound = nullptr;            // loop-invariant trip bound
  std::vector<Instruction *> Reductions; // FP reduction phis
  unsigned Lanes = 0;
};

/// Performs the analysis and transformation for one function.
class VectorizerImpl {
public:
  VectorizerImpl(Function &F, const TargetInfo &Target, AnalysisManager &AM)
      : F(F), Target(Target), AM(AM), Ctx(F.parentModule()->context()) {}

  bool run();

private:
  bool analyzeLoop(analysis::Loop *L, LoopCandidate &C);
  bool analyzeBody(LoopCandidate &C);
  StrideInfo strideOf(Value *V, const LoopCandidate &C);
  bool isInvariant(const Value *V, const LoopCandidate &C) const;
  void transform(const LoopCandidate &C);

  Function &F;
  const TargetInfo &Target;
  AnalysisManager &AM;
  Context &Ctx;
  unsigned LoopCounter = 0;

public:
  unsigned NumVectorized = 0;
};

} // namespace

bool VectorizerImpl::isInvariant(const Value *V, const LoopCandidate &C) const {
  switch (V->kind()) {
  case ValueKind::ConstantInt:
  case ValueKind::ConstantFP:
  case ValueKind::GlobalVariable:
  case ValueKind::Function:
  case ValueKind::Argument:
    return true;
  case ValueKind::Instruction:
    return static_cast<const Instruction *>(V)->parent() != C.Body;
  }
  MPERF_UNREACHABLE("unknown value kind");
}

StrideInfo VectorizerImpl::strideOf(Value *V, const LoopCandidate &C) {
  StrideInfo Result;
  if (V == C.IndVar) {
    Result.Valid = true;
    Result.Const = 1;
    return Result;
  }
  if (isInvariant(V, C)) {
    Result.Valid = true;
    Result.Const = 0;
    return Result;
  }
  auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return Result;

  switch (I->opcode()) {
  case Opcode::Add: {
    StrideInfo L = strideOf(I->operand(0), C);
    StrideInfo R = strideOf(I->operand(1), C);
    if (!L.Valid || !R.Valid)
      return Result;
    if (L.Const == 0 && !L.Scale)
      return R;
    if (R.Const == 0 && !R.Scale)
      return L;
    return Result; // both sides IV-dependent: give up
  }
  case Opcode::Sub: {
    StrideInfo L = strideOf(I->operand(0), C);
    StrideInfo R = strideOf(I->operand(1), C);
    if (!L.Valid || !R.Valid)
      return Result;
    if (R.Const == 0 && !R.Scale)
      return L;
    return Result;
  }
  case Opcode::Mul: {
    StrideInfo L = strideOf(I->operand(0), C);
    if (L.Valid && (L.Const != 0 || L.Scale)) {
      Value *Other = I->operand(1);
      if (!isInvariant(Other, C))
        return Result;
      if (auto *CI = dyn_cast<ConstantInt>(Other)) {
        L.Const *= CI->sext();
        return L;
      }
      if (L.Scale)
        return Result; // at most one runtime factor
      L.Scale = Other;
      return L;
    }
    StrideInfo R = strideOf(I->operand(1), C);
    if (R.Valid && (R.Const != 0 || R.Scale)) {
      Value *Other = I->operand(0);
      if (!isInvariant(Other, C))
        return Result;
      if (auto *CI = dyn_cast<ConstantInt>(Other)) {
        R.Const *= CI->sext();
        return R;
      }
      if (R.Scale)
        return Result;
      R.Scale = Other;
      return R;
    }
    // invariant * invariant
    if (isInvariant(I->operand(0), C) && isInvariant(I->operand(1), C)) {
      Result.Valid = true;
      return Result;
    }
    return Result;
  }
  case Opcode::Shl: {
    StrideInfo L = strideOf(I->operand(0), C);
    auto *CI = dyn_cast<ConstantInt>(I->operand(1));
    if (!L.Valid || !CI)
      return Result;
    L.Const <<= CI->zext();
    return L;
  }
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::Trunc:
    return strideOf(I->operand(0), C);
  case Opcode::PtrAdd: {
    StrideInfo Base = strideOf(I->operand(0), C);
    StrideInfo Off = strideOf(I->operand(1), C);
    if (!Base.Valid || !Off.Valid)
      return Result;
    if (Base.Const == 0 && !Base.Scale)
      return Off;
    if (Off.Const == 0 && !Off.Scale)
      return Base;
    return Result;
  }
  default:
    return Result;
  }
}

bool VectorizerImpl::analyzeLoop(analysis::Loop *L, LoopCandidate &C) {
  // Shape: single-block loop with preheader and a single exit block whose
  // only predecessor is the loop.
  if (L->blocks().size() != 1)
    return false;
  C.Body = L->header();
  C.Preheader = L->preheader();
  if (!C.Preheader)
    return false;
  auto Exits = L->exitBlocks();
  if (Exits.size() != 1)
    return false;
  C.Exit = Exits.front();
  auto ExitPreds = C.Exit->predecessors();
  if (ExitPreds.size() != 1 || ExitPreds.front() != C.Body)
    return false;
  if (!C.Exit->phis().empty())
    return false;

  // Terminator: cond_br(cmp, Body, Exit).
  Instruction *Term = C.Body->terminator();
  if (!Term || Term->opcode() != Opcode::CondBr)
    return false;
  if (Term->successor(0) != C.Body || Term->successor(1) != C.Exit)
    return false;
  auto *Cmp = dyn_cast<Instruction>(Term->operand(0));
  if (!Cmp || Cmp->opcode() != Opcode::ICmp || Cmp->parent() != C.Body)
    return false;
  if (Cmp->icmpPred() != ICmpPred::SLT && Cmp->icmpPred() != ICmpPred::ULT)
    return false;
  C.LatchCmp = Cmp;
  C.Bound = Cmp->operand(1);
  if (!isInvariant(C.Bound, C))
    return false;

  // Induction variable: phi i64 with latch incoming add(phi, 1), and the
  // compare uses iv.next.
  auto *IvNext = dyn_cast<Instruction>(Cmp->operand(0));
  if (!IvNext || IvNext->opcode() != Opcode::Add || IvNext->parent() != C.Body)
    return false;
  auto *Step = dyn_cast<ConstantInt>(IvNext->operand(1));
  auto *IvPhi = dyn_cast<Instruction>(IvNext->operand(0));
  if (!Step || !Step->isOne() || !IvPhi || IvPhi->opcode() != Opcode::Phi ||
      IvPhi->parent() != C.Body)
    return false;
  if (IvPhi->incomingValueFor(C.Body) != IvNext)
    return false;
  if (!IvPhi->type()->isInteger() || IvPhi->type()->integerBits() != 64)
    return false;
  C.IndVar = IvPhi;
  C.IndNext = IvNext;
  C.Start = IvPhi->incomingValueFor(C.Preheader);
  if (!C.Start)
    return false;

  // iv.next may only feed the compare and the phi.
  for (Instruction *I : *C.Body)
    for (Value *Op : I->operands())
      if (Op == C.IndNext && I != Cmp && I != IvPhi)
        return false;

  // Remaining phis must be FP reductions over fadd/fma chains.
  for (Instruction *Phi : C.Body->phis()) {
    if (Phi == IvPhi)
      continue;
    if (!Phi->type()->isFloat())
      return false;
    auto *Latch = dyn_cast<Instruction>(Phi->incomingValueFor(C.Body));
    if (!Latch || Latch->parent() != C.Body)
      return false;
    // Only genuine sum reductions are legal to reassociate across lanes:
    // acc + x (x independent of acc) or fma(a, b, acc). Recurrences like
    // fma(acc, c1, c2) must stay scalar.
    if (Latch->opcode() == Opcode::FAdd) {
      bool LhsIsPhi = Latch->operand(0) == Phi;
      bool RhsIsPhi = Latch->operand(1) == Phi;
      if (LhsIsPhi == RhsIsPhi)
        return false; // zero or both operands are the accumulator
    } else if (Latch->opcode() == Opcode::Fma) {
      if (Latch->operand(2) != Phi || Latch->operand(0) == Phi ||
          Latch->operand(1) == Phi)
        return false;
    } else {
      return false;
    }
    C.Reductions.push_back(Phi);
  }
  return analyzeBody(C);
}

bool VectorizerImpl::analyzeBody(LoopCandidate &C) {
  unsigned MaxElemBytes = 0;
  for (Instruction *I : *C.Body) {
    switch (I->opcode()) {
    case Opcode::Phi:
      if (I != C.IndVar &&
          std::find(C.Reductions.begin(), C.Reductions.end(), I) ==
              C.Reductions.end())
        return false;
      continue;
    case Opcode::Load: {
      if (I->type()->isVector())
        return false; // already vectorized
      StrideInfo S = strideOf(I->operand(0), C);
      if (!S.Valid)
        return false;
      MaxElemBytes = std::max<unsigned>(MaxElemBytes, I->type()->sizeInBytes());
      continue;
    }
    case Opcode::Store: {
      if (I->operand(0)->type()->isVector())
        return false;
      StrideInfo S = strideOf(I->operand(1), C);
      // Stores must be unit-stride: per-element bytes match the stride.
      if (!S.isConstant() || S.Const == 0)
        return false;
      if (static_cast<uint64_t>(S.Const) != I->operand(0)->type()->sizeInBytes())
        return false;
      // Stored value must be loop-invariant or an FP value we widen.
      if (!isInvariant(I->operand(0), C) &&
          !I->operand(0)->type()->isFloat())
        return false;
      MaxElemBytes = std::max<unsigned>(
          MaxElemBytes, I->operand(0)->type()->sizeInBytes());
      continue;
    }
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FNeg:
    case Opcode::Fma:
      MaxElemBytes = std::max<unsigned>(MaxElemBytes, I->type()->sizeInBytes());
      continue;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Shl:
    case Opcode::SExt:
    case Opcode::ZExt:
    case Opcode::Trunc:
    case Opcode::PtrAdd:
      continue; // scalar address arithmetic stays scalar
    case Opcode::ICmp:
      if (I != C.LatchCmp)
        return false;
      continue;
    case Opcode::CondBr:
      continue;
    default:
      return false; // calls, selects, divisions of ints, ...
    }
  }
  if (MaxElemBytes == 0 || !Target.HasVector)
    return false;
  C.Lanes = Target.lanesFor(MaxElemBytes);
  if (C.Lanes < 2)
    return false;

  // Live-outs: only iv.next and reduction latch values may be used
  // outside the loop.
  for (BasicBlock *BB : F) {
    if (BB == C.Body)
      continue;
    for (Instruction *I : *BB)
      for (Value *Op : I->operands()) {
        auto *OpI = dyn_cast<Instruction>(Op);
        if (!OpI || OpI->parent() != C.Body)
          continue;
        bool IsRedLatch = false;
        for (Instruction *Phi : C.Reductions)
          if (Phi->incomingValueFor(C.Body) == OpI)
            IsRedLatch = true;
        if (OpI != C.IndNext && !IsRedLatch)
          return false;
      }
  }
  return true;
}

void VectorizerImpl::transform(const LoopCandidate &C) {
  unsigned VF = C.Lanes;
  std::string Tag = "v" + std::to_string(LoopCounter++);
  BasicBlock *VecPH = F.createBlock(C.Body->name() + "." + Tag + ".ph");
  BasicBlock *VecBody = F.createBlock(C.Body->name() + "." + Tag + ".body");
  BasicBlock *VecExit = F.createBlock(C.Body->name() + "." + Tag + ".exit");

  auto NewInst = [&](Opcode Op, Type *Ty) {
    return std::make_unique<Instruction>(Op, Ty);
  };

  // --- Preheader guard: cond_br ((bound - start) % VF == 0), VecPH, Body.
  {
    Instruction *OldTerm = C.Preheader->terminator();
    assert(OldTerm && OldTerm->opcode() == Opcode::Br &&
           "preheader must end in br");
    C.Preheader->remove(C.Preheader->indexOf(OldTerm));

    auto Sub = NewInst(Opcode::Sub, Ctx.i64Ty());
    Sub->addOperand(C.Bound);
    Sub->addOperand(C.Start);
    Instruction *Trip = C.Preheader->append(std::move(Sub));

    auto Rem = NewInst(Opcode::URem, Ctx.i64Ty());
    Rem->addOperand(Trip);
    Rem->addOperand(Ctx.constI64(VF));
    Instruction *RemI = C.Preheader->append(std::move(Rem));

    auto CmpI = NewInst(Opcode::ICmp, Ctx.i1Ty());
    CmpI->setICmpPred(ICmpPred::EQ);
    CmpI->addOperand(RemI);
    CmpI->addOperand(Ctx.constI64(0));
    Instruction *IsVec = C.Preheader->append(std::move(CmpI));

    auto Br = NewInst(Opcode::CondBr, Ctx.voidTy());
    Br->addOperand(IsVec);
    Br->addSuccessor(VecPH);
    Br->addSuccessor(C.Body);
    C.Preheader->append(std::move(Br));
  }

  // --- Splat cache in VecPH.
  std::map<Value *, Value *> SplatCache;
  auto SplatOf = [&](Value *Scalar) -> Value * {
    auto It = SplatCache.find(Scalar);
    if (It != SplatCache.end())
      return It->second;
    Type *VecTy = Ctx.vectorTy(Scalar->type(), VF);
    auto S = NewInst(Opcode::Splat, VecTy);
    S->addOperand(Scalar);
    Instruction *Raw = VecPH->append(std::move(S));
    SplatCache[Scalar] = Raw;
    return Raw;
  };

  std::map<Value *, Value *> ScalarMap; // original -> scalar clone in VecBody
  std::map<Value *, Value *> VecMap;    // original -> vector value in VecBody

  auto ScalarOf = [&](Value *V) -> Value * {
    auto It = ScalarMap.find(V);
    return It != ScalarMap.end() ? It->second : V;
  };
  auto VecOf = [&](Value *V) -> Value * {
    auto It = VecMap.find(V);
    if (It != VecMap.end())
      return It->second;
    assert(isInvariant(V, C) && "in-loop scalar needs a vector version");
    return SplatOf(V);
  };

  Instruction *VecIvPhi = nullptr;
  std::map<Instruction *, Instruction *> RedPhiMap; // scalar phi -> vec phi
  Instruction *VecIvNext = nullptr;
  Instruction *VecCmp = nullptr;

  for (Instruction *I : *C.Body) {
    switch (I->opcode()) {
    case Opcode::Phi: {
      if (I == C.IndVar) {
        auto Phi = NewInst(Opcode::Phi, Ctx.i64Ty());
        Phi->setName(I->name() + "." + Tag);
        VecIvPhi = VecBody->append(std::move(Phi));
        ScalarMap[I] = VecIvPhi;
        continue;
      }
      // Reduction: vector accumulator starting at zero-splat.
      Type *VecTy = Ctx.vectorTy(I->type(), VF);
      auto Phi = NewInst(Opcode::Phi, VecTy);
      Phi->setName(I->name() + "." + Tag);
      Instruction *VecPhi = VecBody->append(std::move(Phi));
      VecMap[I] = VecPhi;
      RedPhiMap[I] = VecPhi;
      continue;
    }
    case Opcode::Add: {
      if (I == C.IndNext) {
        auto AddI = NewInst(Opcode::Add, Ctx.i64Ty());
        AddI->addOperand(VecIvPhi);
        AddI->addOperand(Ctx.constI64(VF));
        AddI->setName(I->name() + "." + Tag);
        VecIvNext = VecBody->append(std::move(AddI));
        ScalarMap[I] = VecIvNext;
        continue;
      }
      [[fallthrough]];
    }
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Shl:
    case Opcode::SExt:
    case Opcode::ZExt:
    case Opcode::Trunc:
    case Opcode::PtrAdd: {
      // Scalar clone computing the lane-0 value.
      auto Clone = cloneInstruction(*I);
      for (unsigned OpI = 0, E = Clone->numOperands(); OpI != E; ++OpI)
        Clone->setOperand(OpI, ScalarOf(Clone->operand(OpI)));
      Instruction *Raw = VecBody->append(std::move(Clone));
      ScalarMap[I] = Raw;
      continue;
    }
    case Opcode::Load: {
      StrideInfo S = strideOf(I->operand(0), C);
      assert(S.Valid && "legality checked earlier");
      Value *Addr = ScalarOf(I->operand(0));
      if (S.isInvariant()) {
        // Scalar load + splat.
        auto LoadI = NewInst(Opcode::Load, I->type());
        LoadI->addOperand(Addr);
        LoadI->setName(I->name() + "." + Tag);
        Instruction *Raw = VecBody->append(std::move(LoadI));
        ScalarMap[I] = Raw;
        Type *VecTy = Ctx.vectorTy(I->type(), VF);
        auto SplatI = NewInst(Opcode::Splat, VecTy);
        SplatI->addOperand(Raw);
        VecMap[I] = VecBody->append(std::move(SplatI));
        continue;
      }
      Type *VecTy = Ctx.vectorTy(I->type(), VF);
      auto LoadI = NewInst(Opcode::Load, VecTy);
      LoadI->addOperand(Addr);
      LoadI->setName(I->name() + "." + Tag);
      bool Unit = S.isConstant() &&
                  static_cast<uint64_t>(S.Const) == I->type()->sizeInBytes();
      if (!Unit) {
        // Strided access: materialize the byte stride as an operand.
        Value *Stride = nullptr;
        if (S.isConstant()) {
          Stride = Ctx.constI64(static_cast<uint64_t>(S.Const));
        } else {
          // Const * Scale, materialized in the vector preheader.
          auto MulI = NewInst(Opcode::Mul, Ctx.i64Ty());
          MulI->addOperand(Ctx.constI64(static_cast<uint64_t>(S.Const)));
          MulI->addOperand(S.Scale);
          Stride = VecPH->append(std::move(MulI));
        }
        LoadI->addOperand(Stride);
      }
      VecMap[I] = VecBody->append(std::move(LoadI));
      continue;
    }
    case Opcode::Store: {
      Value *Stored = I->operand(0);
      Value *VecVal =
          Stored->type()->isFloat() && !isInvariant(Stored, C)
              ? VecOf(Stored)
              : SplatOf(Stored);
      auto StoreI = NewInst(Opcode::Store, Ctx.voidTy());
      StoreI->addOperand(VecVal);
      StoreI->addOperand(ScalarOf(I->operand(1)));
      VecBody->append(std::move(StoreI));
      continue;
    }
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FNeg:
    case Opcode::Fma: {
      Type *VecTy = Ctx.vectorTy(I->type(), VF);
      auto NewI = NewInst(I->opcode(), VecTy);
      NewI->setName(I->name() + "." + Tag);
      for (Value *Op : I->operands())
        NewI->addOperand(VecOf(Op));
      VecMap[I] = VecBody->append(std::move(NewI));
      continue;
    }
    case Opcode::ICmp: {
      assert(I == C.LatchCmp && "unexpected compare in vector body");
      auto CmpI = NewInst(Opcode::ICmp, Ctx.i1Ty());
      CmpI->setICmpPred(I->icmpPred());
      CmpI->addOperand(VecIvNext);
      CmpI->addOperand(C.Bound);
      VecCmp = VecBody->append(std::move(CmpI));
      continue;
    }
    case Opcode::CondBr: {
      auto Br = NewInst(Opcode::CondBr, Ctx.voidTy());
      Br->addOperand(VecCmp);
      Br->addSuccessor(VecBody);
      Br->addSuccessor(VecExit);
      VecBody->append(std::move(Br));
      continue;
    }
    default:
      MPERF_UNREACHABLE("instruction class rejected by legality");
    }
  }

  // Wire the vector IV and reduction phis.
  VecIvPhi->addIncoming(C.Start, VecPH);
  VecIvPhi->addIncoming(VecIvNext, VecBody);
  for (auto &[ScalarPhi, VecPhi] : RedPhiMap) {
    Type *ElemTy = ScalarPhi->type();
    Value *Zero = Ctx.constFP(ElemTy, 0.0);
    VecPhi->addIncoming(SplatOf(Zero), VecPH);
    VecPhi->addIncoming(VecMap.at(ScalarPhi->incomingValueFor(C.Body)),
                        VecBody);
  }

  // Finish VecPH with its branch (after all splats were appended).
  {
    auto Br = NewInst(Opcode::Br, Ctx.voidTy());
    Br->addSuccessor(VecBody);
    VecPH->append(std::move(Br));
  }

  // VecExit: horizontal reductions plus the final merge into Exit.
  std::map<Instruction *, Value *> RedFinal; // scalar latch -> merged value
  for (Instruction *ScalarPhi : C.Reductions) {
    Instruction *VecPhi = RedPhiMap.at(ScalarPhi);
    auto *LatchVal =
        cast<Instruction>(ScalarPhi->incomingValueFor(C.Body));
    auto Red = NewInst(Opcode::ReduceFAdd, ScalarPhi->type());
    Red->addOperand(VecMap.at(LatchVal));
    (void)VecPhi;
    Instruction *RedI = VecExit->append(std::move(Red));
    // Fold the scalar init value back in: acc = init + sum(lanes).
    Value *Init = ScalarPhi->incomingValueFor(C.Preheader);
    auto AddI = NewInst(Opcode::FAdd, ScalarPhi->type());
    AddI->addOperand(RedI);
    AddI->addOperand(Init);
    RedFinal[LatchVal] = VecExit->append(std::move(AddI));
  }
  {
    auto Br = NewInst(Opcode::Br, Ctx.voidTy());
    Br->addSuccessor(C.Exit);
    VecExit->append(std::move(Br));
  }

  // Merge live-outs in the exit block with phis.
  // iv.next merges with the vector iv (both equal Bound on exit).
  std::vector<std::pair<Instruction *, Value *>> Merges;
  Merges.push_back({C.IndNext, VecIvNext});
  for (auto &[LatchVal, Final] : RedFinal)
    Merges.push_back({LatchVal, Final});

  for (auto &[ScalarVal, VecVal] : Merges) {
    // Find outside uses first.
    bool UsedOutside = false;
    for (BasicBlock *BB : F) {
      if (BB == C.Body)
        continue;
      for (Instruction *I : *BB)
        for (Value *Op : I->operands())
          if (Op == ScalarVal)
            UsedOutside = true;
    }
    if (!UsedOutside)
      continue;
    auto Phi = NewInst(Opcode::Phi, ScalarVal->type());
    Phi->setName(ScalarVal->name() + ".merge");
    Instruction *PhiRaw = C.Exit->insertAt(0, std::move(Phi));
    // Replace uses outside the loop (and outside the new phi itself).
    for (BasicBlock *BB : F) {
      if (BB == C.Body)
        continue;
      for (Instruction *I : *BB) {
        if (I == PhiRaw)
          continue;
        I->replaceUsesOf(ScalarVal, PhiRaw);
      }
    }
    PhiRaw->addIncoming(ScalarVal, C.Body);
    PhiRaw->addIncoming(VecVal, VecExit);
  }
  ++NumVectorized;
}

bool VectorizerImpl::run() {
  if (!Target.HasVector)
    return false;
  analysis::LoopInfo &LI = AM.loopInfo(F);
  std::vector<LoopCandidate> Candidates;
  for (analysis::Loop *L : LI.loopsInPreorder()) {
    if (!L->isInnermost())
      continue;
    LoopCandidate C;
    if (analyzeLoop(L, C))
      Candidates.push_back(C);
  }
  for (const LoopCandidate &C : Candidates)
    transform(C);
  return !Candidates.empty();
}

bool LoopVectorizer::runOn(Function &F, AnalysisManager &AM) {
  VectorizerImpl Impl(F, Target, AM);
  bool Changed = Impl.run();
  NumVectorized += Impl.NumVectorized;
  return Changed;
}
