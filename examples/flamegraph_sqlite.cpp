//===- flamegraph_sqlite.cpp - Flame graphs on a crippled-PMU core --------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// The paper's section 5.1 scenario as a runnable example: profile a
// database engine on the SpacemiT X60 — whose PMU cannot sample cycles
// or instructions — and still get cycle *and* instruction flame graphs
// plus per-function IPC, thanks to the grouping workaround. Writes
// flamegraph_sqlite.svg next to the binary.
//
//===----------------------------------------------------------------------===//

#include "miniperf/FlameGraph.h"
#include "miniperf/Hotspots.h"
#include "miniperf/Session.h"
#include "support/Format.h"
#include "workloads/SqliteLike.h"

#include <cstdio>
#include <fstream>

using namespace mperf;
using namespace mperf::miniperf;

int main() {
  workloads::SqliteLikeConfig Config;
  Config.NumPages = 48;
  Config.CellsPerPage = 20;
  Config.NumQueries = 30;
  auto Workload = workloads::buildSqliteLike(Config);

  hw::Platform X60 = hw::spacemitX60();
  SessionOptions Opts;
  Opts.SamplePeriod = 15000;
  Session S(X60, Opts);
  auto ROr = S.profile(*Workload.M, "main",
                       {vm::RtValue::ofInt(Config.NumQueries)});
  if (!ROr) {
    std::fprintf(stderr, "profile failed: %s\n", ROr.errorMessage().c_str());
    return 1;
  }
  Profile &R = *ROr;

  std::printf("profiled %s on %s\n", Workload.M->name().c_str(),
              X60.CoreName.c_str());
  std::printf("sampling leader: %s%s\n", R.LeaderDescription.c_str(),
              R.UsedWorkaround ? "  (workaround engaged)" : "");
  std::printf("samples: %zu, IPC %.2f\n\n", R.Samples.size(), R.Ipc);

  // Sanity: the engine's answer matches the host reference.
  vm::Interpreter Check(*Workload.M);
  (void)Check.run("main", {vm::RtValue::ofInt(Config.NumQueries)});
  std::printf("engine result: %llu matches (host reference: %llu)\n\n",
              static_cast<unsigned long long>(Workload.result(Check)),
              static_cast<unsigned long long>(Workload.ExpectedMatches));

  FlameGraph Cycles =
      FlameGraph::fromSamples(R.Samples, R.counterFd("cycles"), "cycles");
  std::printf("%s\n", Cycles.renderAscii(100).c_str());

  FlameGraph Instr = FlameGraph::fromSamples(
      R.Samples, R.counterFd("instructions"), "instructions");
  std::ofstream Svg("flamegraph_sqlite.svg");
  Svg << Cycles.renderSvg();
  std::printf("svg written to flamegraph_sqlite.svg\n\n");

  std::printf("folded stacks (instructions metric, first lines):\n");
  std::string Folded = Instr.folded();
  size_t Shown = 0, Pos = 0;
  while (Shown < 5 && Pos < Folded.size()) {
    size_t End = Folded.find('\n', Pos);
    std::printf("  %s\n", Folded.substr(Pos, End - Pos).c_str());
    Pos = End + 1;
    ++Shown;
  }

  auto Rows = computeHotspots(R);
  std::printf("\n%s", hotspotTable(Rows, X60.CoreName, 5).render().c_str());
  return 0;
}
