//===- SbiPmu.h - OpenSBI PMU extension model ------------------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Machine-mode firmware side of Fig. 1's software stack: "the kernel
/// driver can request OpenSBI to perform privileged read and write
/// operations on its behalf, targeting machine-level PMU registers"
/// (§3.2). Every operation models an `ecall`: the core switches to
/// Machine mode and burns trap + firmware cycles, so profilers see the
/// cost of the SBI path — and see it disappear after mcounteren
/// delegation enables direct Supervisor-mode counter reads.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_SBI_SBIPMU_H
#define MPERF_SBI_SBIPMU_H

#include "hw/CoreModel.h"
#include "hw/Pmu.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace mperf {
namespace sbi {

/// Firmware configuration knobs.
struct SbiConfig {
  /// Cycles for one ecall round trip (trap entry, firmware dispatch,
  /// sret). OpenSBI on small cores lands in the hundreds.
  double EcallCycles = 400;
};

/// The SBI PMU extension, bound to one hart's PMU and core model.
class SbiPmu {
public:
  SbiPmu(hw::Pmu &Pmu, hw::CoreModel &Core, SbiConfig Config = SbiConfig());

  //===--------------------------------------------------------------===//
  // SBI PMU extension calls (each is one simulated ecall)
  //===--------------------------------------------------------------===//

  /// sbi_pmu_counter_config_matching: finds a free hpm counter and
  /// programs its event selector with \p VendorCode.
  Expected<unsigned> counterConfigMatching(uint16_t VendorCode);

  /// sbi_pmu_counter_start: clears the counter to \p InitialValue and
  /// enables counting (clears its mcountinhibit bit).
  Error counterStart(unsigned Idx, uint64_t InitialValue);

  /// sbi_pmu_counter_stop: sets the mcountinhibit bit.
  Error counterStop(unsigned Idx);

  /// sbi_pmu_counter_fw_read: privileged read through firmware.
  Expected<uint64_t> counterRead(unsigned Idx);

  /// Arms overflow interrupts (Sscofpmf path). Fails when the hardware
  /// cannot raise overflow interrupts for the counter's event — the X60
  /// limitation miniperf works around.
  Error counterArmOverflow(unsigned Idx, uint64_t Period);

  /// Releases a counter previously handed out by counterConfigMatching.
  Error counterRelease(unsigned Idx);

  /// Writes mcounteren so Supervisor mode can read counters directly,
  /// "avoiding repeated SBI calls for counter reads" (§3.2).
  void delegateCounters(uint32_t Mask);

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  /// Number of ecalls served (each cost EcallCycles in M-mode).
  uint64_t numEcalls() const { return NumEcalls; }

  /// Human-readable log of every firmware operation, used by the Fig. 1
  /// bench to print the layer-interaction trace.
  const std::vector<std::string> &opLog() const { return OpLog; }

private:
  /// Models the ecall: M-mode switch + firmware cycles, and logs it.
  void ecall(const std::string &What);

  hw::Pmu &ThePmu;
  hw::CoreModel &Core;
  SbiConfig Config;
  uint64_t NumEcalls = 0;
  std::vector<bool> HpmInUse;
  std::vector<std::string> OpLog;
};

} // namespace sbi
} // namespace mperf

#endif // MPERF_SBI_SBIPMU_H
