//===- Cloning.cpp - Function cloning ----------------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "transform/Cloning.h"

using namespace mperf;
using namespace mperf::transform;
using namespace mperf::ir;

std::unique_ptr<Instruction>
mperf::transform::cloneInstruction(const Instruction &I) {
  auto New = std::make_unique<Instruction>(I.opcode(), I.type());
  New->setName(I.name());
  for (Value *Op : I.operands())
    New->addOperand(Op);
  for (unsigned S = 0, E = I.numSuccessors(); S != E; ++S)
    New->addSuccessor(I.successor(S));
  if (I.opcode() == Opcode::Phi)
    for (unsigned V = 0, E = I.numOperands(); V != E; ++V)
      New->appendIncomingBlock(I.incomingBlock(V));
  if (I.opcode() == Opcode::ICmp)
    New->setICmpPred(I.icmpPred());
  if (I.opcode() == Opcode::FCmp)
    New->setFCmpPred(I.fcmpPred());
  if (I.opcode() == Opcode::Alloca)
    New->setAllocaBytes(I.allocaBytes());
  if (I.opcode() == Opcode::Call)
    New->setCallee(I.callee());
  New->setLoc(I.loc());
  return New;
}

Function *mperf::transform::cloneFunction(const Function &Src,
                                          const std::string &NewName,
                                          CloneMap *OutMap) {
  Module *M = Src.parentModule();
  assert(M && "cloning a function without a module");
  assert(!Src.isDeclaration() && "cloning a declaration");

  Function *New = M->createFunction(NewName, Src.returnType(),
                                    Src.paramTypes());
  New->setLoc(Src.loc());

  CloneMap LocalMap;
  CloneMap &Map = OutMap ? *OutMap : LocalMap;

  for (unsigned I = 0, E = Src.numArgs(); I != E; ++I) {
    New->arg(I)->setName(Src.arg(I)->name());
    Map.Values[Src.arg(I)] = New->arg(I);
  }
  for (const BasicBlock *BB : Src)
    Map.Blocks[BB] = New->createBlock(BB->name());

  for (const BasicBlock *BB : Src) {
    BasicBlock *NewBB = Map.Blocks[BB];
    for (const Instruction *I : *BB) {
      Instruction *NewI = NewBB->append(cloneInstruction(*I));
      Map.Values[I] = NewI;
    }
  }

  // Remap operands, successors and phi incoming blocks.
  for (const BasicBlock *BB : Src) {
    BasicBlock *NewBB = Map.Blocks[BB];
    for (Instruction *I : *NewBB) {
      for (unsigned OpI = 0, E = I->numOperands(); OpI != E; ++OpI) {
        auto It = Map.Values.find(I->operand(OpI));
        if (It != Map.Values.end())
          I->setOperand(OpI, It->second);
      }
      for (unsigned S = 0, E = I->numSuccessors(); S != E; ++S) {
        auto It = Map.Blocks.find(I->successor(S));
        assert(It != Map.Blocks.end() && "branch to a block outside function");
        I->setSuccessor(S, It->second);
      }
      if (I->opcode() == Opcode::Phi) {
        for (unsigned V = 0, E = I->numOperands(); V != E; ++V) {
          auto It = Map.Blocks.find(I->incomingBlock(V));
          assert(It != Map.Blocks.end() && "phi incoming outside function");
          I->setIncomingBlock(V, It->second);
        }
      }
    }
  }
  return New;
}
