//===- SweepReport.cpp - Aggregated results of one sweep -----------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "driver/SweepReport.h"

#include "support/Format.h"
#include "support/JSON.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace mperf;
using namespace mperf::driver;

size_t SweepReport::numFailures() const {
  size_t N = 0;
  for (const ScenarioResult &R : Results)
    N += R.Failed ? 1 : 0;
  return N;
}

const ScenarioResult *SweepReport::result(const std::string &Name) const {
  for (const ScenarioResult &R : Results)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

/// "hotspots,topdown" or "hotspots,topdown(1 failed)" for the table.
static std::string analysesCell(const ScenarioResult &R) {
  if (R.Analyses.empty())
    return "-";
  std::string Cell;
  size_t Failures = 0;
  for (const AnalysisRecord &A : R.Analyses) {
    Cell += (Cell.empty() ? "" : ",") + A.Name;
    Failures += A.Failed ? 1 : 0;
  }
  if (Failures)
    Cell += " (" + std::to_string(Failures) + " failed)";
  return Cell;
}

TextTable SweepReport::toTable() const {
  TextTable T("Sweep: " + std::to_string(Results.size()) + " scenarios, " +
              std::to_string(Jobs) + " job(s), " +
              std::to_string(numFailures()) + " failure(s), " +
              std::to_string(WorkloadBuilds) + " workload build(s)" +
              (CacheEnabled ? " (" + std::to_string(CacheHits) +
                                  " cache hit(s))"
                            : " (cache off)"));
  T.addHeader({"Scenario", "Platform", "cycles", "instructions", "IPC",
               "samples", "sim ms", "build ms", "cache", "analyses",
               "status"});
  for (const ScenarioResult &R : Results) {
    const std::string CacheCell =
        CacheEnabled ? (R.SharedBuild ? "hit" : "miss") : "-";
    if (R.Failed) {
      T.addRow({R.Name, R.PlatformName, "-", "-", "-", "-", "-",
                fixed(R.BuildHostSeconds * 1e3, 1), CacheCell, "-",
                "FAILED: " + R.Error});
      continue;
    }
    T.addRow({R.Name, R.PlatformName, withCommas(R.Profile.Cycles),
              withCommas(R.Profile.Instructions), fixed(R.Profile.Ipc, 2),
              std::to_string(R.NumSamples),
              fixed(R.Profile.Seconds * 1e3, 3),
              fixed(R.BuildHostSeconds * 1e3, 1), CacheCell,
              analysesCell(R), "ok"});
  }
  return T;
}

std::string SweepReport::toJson() const {
  static metrics::Counter &SerializeNs =
      metrics::Registry::global().counter("report.serialize_host_ns");
  metrics::ScopedTimerNs Timer(SerializeNs);
  trace::ScopedSpan Span("report.serialize");

  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("miniperf-sweep-report/v4");
  W.key("jobs");
  W.number(static_cast<uint64_t>(Jobs));
  W.key("host_seconds");
  W.number(HostSeconds);
  W.key("num_scenarios");
  W.number(static_cast<uint64_t>(Results.size()));
  W.key("num_failures");
  W.number(static_cast<uint64_t>(numFailures()));
  // Build economics: with the cache on, "builds" counts distinct
  // (workload, variant, vector-signature) keys — the gateable number
  // behind the "build each workload once per sweep" property. The
  // counts live in their own top-level block, not per scenario, so the
  // --baseline gate (which diffs per-scenario metrics only) compares
  // cache-on and cache-off runs on execution results alone.
  W.key("build_cache");
  W.beginObject();
  W.key("enabled");
  W.boolean(CacheEnabled);
  W.key("hits");
  W.number(CacheHits);
  W.key("builds");
  W.number(WorkloadBuilds);
  W.endObject();
  // Observability of the simulator itself (support/Metrics.h): how the
  // sweep spent host time, not what the simulated cores did. Advisory
  // by policy — isAdvisoryMetricKey() exempts the whole block from
  // --baseline / bench-diff gating, so its run-to-run wall-clock noise
  // can never fail a gate.
  W.key("self_metrics");
  W.rawValue(SelfMetricsJson.empty() ? "{}" : SelfMetricsJson);
  W.key("results");
  W.beginArray();
  for (const ScenarioResult &R : Results) {
    W.beginObject();
    W.key("name");
    W.string(R.Name);
    W.key("platform");
    W.string(R.PlatformName);
    W.key("workload");
    W.string(R.WorkloadName);
    W.key("tags");
    W.beginArray();
    for (const std::string &Tag : R.Tags)
      W.string(Tag);
    W.endArray();
    W.key("ok");
    W.boolean(!R.Failed);
    if (R.Failed) {
      W.key("error");
      W.string(R.Error);
    } else {
      W.key("cycles");
      W.number(R.Profile.Cycles);
      W.key("instructions");
      W.number(R.Profile.Instructions);
      W.key("ipc");
      W.number(R.Profile.Ipc);
      W.key("seconds");
      W.number(R.Profile.Seconds);
      W.key("samples");
      W.number(R.NumSamples);
      W.key("interrupts");
      W.number(R.Profile.Interrupts);
      W.key("sbi_ecalls");
      W.number(R.Profile.SbiEcalls);
      W.key("retired_ir_ops");
      W.number(R.Profile.Vm.RetiredOps);
      W.key("used_workaround");
      W.boolean(R.Profile.UsedWorkaround);
      W.key("sampling_available");
      W.boolean(R.Profile.SamplingAvailable);
      W.key("leader");
      W.string(R.Profile.LeaderDescription);
      W.key("counters");
      W.beginObject();
      for (const miniperf::ProfileCounter &C : R.Profile.Counters) {
        W.key(C.Name);
        W.number(C.Value);
      }
      W.endObject();
      if (!R.Analyses.empty()) {
        W.key("analyses");
        W.beginArray();
        for (const AnalysisRecord &A : R.Analyses) {
          W.beginObject();
          W.key("analysis");
          W.string(A.Name);
          W.key("ok");
          W.boolean(!A.Failed);
          if (A.Failed) {
            W.key("error");
            W.string(A.Error);
          } else {
            W.key("schema");
            W.string(A.Schema);
            W.key("report");
            W.rawValue(A.Json);
          }
          W.endObject();
        }
        W.endArray();
      }
    }
    W.key("host_seconds");
    W.number(R.HostSeconds);
    // Wall-clock split + cache outcome. The *_host_seconds suffix is
    // load-bearing: isAdvisoryMetricKey (support/MetricPolicy.h) makes
    // the --baseline drift gate skip every key ending in "host_seconds"
    // (wall clock is not a deterministic metric).
    W.key("build_host_seconds");
    W.number(R.BuildHostSeconds);
    W.key("exec_host_seconds");
    W.number(R.ExecHostSeconds);
    W.key("shared_build");
    W.boolean(R.SharedBuild);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}
