//===- SweepReport.h - Aggregated results of one sweep ---------*- C++ -*-===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable outcome of one scenario sweep: per-scenario
/// ProfileResults (or failure messages) in matrix order, renderable as a
/// text table (support/Table.h) and as JSON (support/JSON.h). The JSON
/// schema is versioned so downstream perf gates can diff reports.
///
//===----------------------------------------------------------------------===//

#ifndef MPERF_DRIVER_SWEEPREPORT_H
#define MPERF_DRIVER_SWEEPREPORT_H

#include "driver/Scenario.h"
#include "support/Table.h"

namespace mperf {
namespace driver {

/// What one scenario produced.
struct ScenarioResult {
  std::string Name;
  std::string PlatformName;
  std::string WorkloadName;
  std::vector<std::string> Tags;

  /// True when the workload failed to build or the run trapped; Error
  /// carries the message and Profile is default-initialized.
  bool Failed = false;
  std::string Error;

  miniperf::ProfileResult Profile;
  /// Sample count before any trimming (Profile.Samples may be cleared
  /// by the runner to bound sweep memory).
  uint64_t NumSamples = 0;
  /// Host wall-clock spent building + simulating this scenario.
  double HostSeconds = 0;
};

/// All results of one sweep, in scenario (matrix) order.
struct SweepReport {
  std::vector<ScenarioResult> Results;
  /// Worker threads the sweep actually used.
  unsigned Jobs = 1;
  /// Host wall-clock for the whole sweep.
  double HostSeconds = 0;

  size_t numFailures() const;

  /// Finds a result by scenario name; nullptr on miss.
  const ScenarioResult *result(const std::string &Name) const;

  /// One row per scenario: counts, IPC, samples, status.
  TextTable toTable() const;

  /// The versioned JSON document ("miniperf-sweep-report/v1").
  std::string toJson() const;
};

} // namespace driver
} // namespace mperf

#endif // MPERF_DRIVER_SWEEPREPORT_H
