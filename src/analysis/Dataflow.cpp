//===- Dataflow.cpp - Generic bitset dataflow framework ------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include <algorithm>

using namespace mperf;
using namespace mperf::analysis;
using namespace mperf::ir;

//===----------------------------------------------------------------------===//
// ValueNumbering
//===----------------------------------------------------------------------===//

ValueNumbering::ValueNumbering(const Function &F) {
  for (unsigned A = 0, E = F.numArgs(); A != E; ++A) {
    Index[F.arg(A)] = static_cast<unsigned>(Values.size());
    Values.push_back(F.arg(A));
  }
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (!I->type()->isVoid()) {
        Index[I] = static_cast<unsigned>(Values.size());
        Values.push_back(I);
      }
}

//===----------------------------------------------------------------------===//
// Solver
//===----------------------------------------------------------------------===//

std::map<const BasicBlock *, BlockFacts>
mperf::analysis::solveDataflow(const DominatorTree &DT,
                               const DataflowProblem &P) {
  const bool Forward = P.Direction == DataflowDirection::Forward;
  const std::vector<BasicBlock *> &RPO = DT.reversePostOrder();

  std::map<const BasicBlock *, BlockFacts> Facts;
  for (const BasicBlock *BB : RPO) {
    Facts[BB].In.resize(P.NumFacts);
    Facts[BB].Out.resize(P.NumFacts);
  }

  auto setOf = [&](const std::map<const BasicBlock *, BitSet> &M,
                   const BasicBlock *BB) -> const BitSet * {
    auto It = M.find(BB);
    return It == M.end() ? nullptr : &It->second;
  };

  // Round-robin over a direction-appropriate order until nothing
  // changes. RPO converges forward problems in O(loop depth) rounds;
  // its reverse does the same for backward ones.
  std::vector<const BasicBlock *> Order(RPO.begin(), RPO.end());
  if (!Forward)
    std::reverse(Order.begin(), Order.end());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock *BB : Order) {
      BlockFacts &BF = Facts[BB];
      // Meet over the entering edges.
      BitSet Meet(P.NumFacts);
      if (Forward) {
        for (const BasicBlock *Pred : BB->predecessors()) {
          if (!DT.isReachable(Pred))
            continue;
          Meet.unionWith(Facts[Pred].Out);
          auto EIt = P.EdgeGen.find({Pred, BB});
          if (EIt != P.EdgeGen.end())
            Meet.unionWith(EIt->second);
        }
      } else {
        for (const BasicBlock *Succ : BB->successors()) {
          if (!DT.isReachable(Succ))
            continue;
          Meet.unionWith(Facts[Succ].In);
          auto EIt = P.EdgeGen.find({BB, Succ});
          if (EIt != P.EdgeGen.end())
            Meet.unionWith(EIt->second);
        }
      }
      BitSet &MeetSlot = Forward ? BF.In : BF.Out;
      Changed |= MeetSlot.unionWith(Meet);

      // Transfer: Gen | (meet - Kill).
      BitSet Through = MeetSlot;
      if (const BitSet *K = setOf(P.Kill, BB))
        Through.subtract(*K);
      if (const BitSet *G = setOf(P.Gen, BB))
        Through.unionWith(*G);
      BitSet &FlowSlot = Forward ? BF.Out : BF.In;
      Changed |= FlowSlot.unionWith(Through);
    }
  }
  return Facts;
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

Liveness::Liveness(const Function &F, const DominatorTree &DT)
    : VN(F), Empty(VN.size()) {
  DataflowProblem P;
  P.Direction = DataflowDirection::Backward;
  P.NumFacts = VN.size();

  for (const BasicBlock *BB : F) {
    BitSet Gen(VN.size()), Kill(VN.size());
    // Upward-exposed uses: operands read before any local redefinition.
    // In SSA a value has one def, so "before the def" simply means the
    // use is not of something this block defined earlier.
    BitSet DefinedSoFar(VN.size());
    for (const Instruction *I : *BB) {
      if (I->opcode() == Opcode::Phi) {
        // Phi operands are uses on the incoming edge, not here.
        int D = VN.indexOf(I);
        if (D >= 0) {
          Kill.set(static_cast<unsigned>(D));
          DefinedSoFar.set(static_cast<unsigned>(D));
        }
        continue;
      }
      for (const Value *Op : I->operands()) {
        int U = Op ? VN.indexOf(Op) : -1;
        if (U >= 0 && !DefinedSoFar.test(static_cast<unsigned>(U)))
          Gen.set(static_cast<unsigned>(U));
      }
      int D = VN.indexOf(I);
      if (D >= 0) {
        Kill.set(static_cast<unsigned>(D));
        DefinedSoFar.set(static_cast<unsigned>(D));
      }
    }
    P.Gen[BB] = std::move(Gen);
    P.Kill[BB] = std::move(Kill);

    // Phi uses ride the matching incoming edge. Operands without a
    // recorded incoming block (malformed input the verifier reports
    // separately) contribute nothing.
    for (const Instruction *Phi : BB->phis()) {
      unsigned E = std::min(Phi->numOperands(), Phi->numIncomingBlocks());
      for (unsigned V = 0; V != E; ++V) {
        const BasicBlock *In = Phi->incomingBlock(V);
        int U = VN.indexOf(Phi->operand(V));
        if (U < 0)
          continue;
        auto Key = std::make_pair(In, static_cast<const BasicBlock *>(BB));
        BitSet &EG = P.EdgeGen[Key];
        if (EG.size() == 0)
          EG.resize(VN.size());
        EG.set(static_cast<unsigned>(U));
      }
    }
  }

  Facts = solveDataflow(DT, P);
}

const BitSet &Liveness::liveIn(const BasicBlock *BB) const {
  auto It = Facts.find(BB);
  return It == Facts.end() ? Empty : It->second.In;
}

const BitSet &Liveness::liveOut(const BasicBlock *BB) const {
  auto It = Facts.find(BB);
  return It == Facts.end() ? Empty : It->second.Out;
}

//===----------------------------------------------------------------------===//
// ReachingDefs
//===----------------------------------------------------------------------===//

ReachingDefs::ReachingDefs(const Function &F, const DominatorTree &DT)
    : VN(F), Empty(VN.size()) {
  DataflowProblem P;
  P.Direction = DataflowDirection::Forward;
  P.NumFacts = VN.size();

  for (const BasicBlock *BB : F) {
    BitSet Gen(VN.size());
    for (const Instruction *I : *BB) {
      int D = VN.indexOf(I);
      if (D >= 0)
        Gen.set(static_cast<unsigned>(D));
    }
    // Arguments are defined on function entry.
    if (!F.isDeclaration() && BB == F.entry())
      for (unsigned A = 0, E = F.numArgs(); A != E; ++A) {
        int D = VN.indexOf(F.arg(A));
        if (D >= 0)
          Gen.set(static_cast<unsigned>(D));
      }
    P.Gen[BB] = std::move(Gen);
  }

  Facts = solveDataflow(DT, P);
}

const BitSet &ReachingDefs::reachingIn(const BasicBlock *BB) const {
  auto It = Facts.find(BB);
  return It == Facts.end() ? Empty : It->second.In;
}
