//===- Matmul.cpp - The paper's tiled matmul kernel ----------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "workloads/Matmul.h"
#include "workloads/Compile.h"
#include "workloads/LoopBuilder.h"
#include "support/RNG.h"

#include <cmath>
#include <cstring>
#include <vector>

using namespace mperf;
using namespace mperf::workloads;
using namespace mperf::ir;

/// Emits `base + index*4` as a pointer to element \p Index of an f32
/// array.
static Value *f32ElemPtr(IRBuilder &B, Value *Base, Value *Index) {
  Value *Off = B.createShl(Index, B.i64(2));
  return B.createPtrAdd(Base, Off);
}

MatmulWorkload mperf::workloads::buildMatmul(const MatmulConfig &Config) {
  assert(Config.N % Config.Tile == 0 &&
         "matmul N must be a multiple of the tile size");
  MatmulWorkload W;
  W.Config = Config;
  W.M = std::make_unique<Module>("matmul");
  Module &M = *W.M;
  Context &Ctx = M.context();
  IRBuilder B(M);

  uint64_t Elems = static_cast<uint64_t>(Config.N) * Config.N;
  M.createGlobal("A", Elems * 4);
  M.createGlobal("B", Elems * 4);
  M.createGlobal("C", Elems * 4);
  M.createGlobal("SELF_CYCLES", 8);

  Function *Clock = M.createDeclaration(ClockFnName, Ctx.i64Ty(), {});

  //===------------------------------------------------------------===//
  // matmul_kernel(ptr A, ptr B, ptr C, i64 n) — §5.2's loop nest.
  //===------------------------------------------------------------===//
  Function *Kernel = M.createFunction(
      "matmul_kernel", Ctx.voidTy(),
      {Ctx.ptrTy(), Ctx.ptrTy(), Ctx.ptrTy(), Ctx.i64Ty()});
  Kernel->setLoc(SourceLoc{"matmul.c", 7, "matmul_kernel"});
  Argument *ArgA = Kernel->arg(0);
  Argument *ArgB = Kernel->arg(1);
  Argument *ArgC = Kernel->arg(2);
  Argument *ArgN = Kernel->arg(3);
  ArgA->setName("A");
  ArgB->setName("B");
  ArgC->setName("C");
  ArgN->setName("n");

  BasicBlock *Entry = Kernel->createBlock("entry");
  B.setInsertPoint(Entry);
  ConstantInt *TileC = B.i64(Config.Tile);

  // for (ii = 0; ii < n; ii += TILE)  — expressed as a tile-index loop
  // (tile count = n / TILE) so every IV steps by one.
  Value *NumTiles = B.createSDiv(ArgN, TileC, "ntiles");

  CountedLoop LoopII = beginLoop(B, B.i64(0), NumTiles, "ii");
  Value *II = B.createMul(LoopII.IV, TileC, "ii.base");
  CountedLoop LoopJJ = beginLoop(B, B.i64(0), NumTiles, "jj");
  Value *JJ = B.createMul(LoopJJ.IV, TileC, "jj.base");
  CountedLoop LoopKK = beginLoop(B, B.i64(0), NumTiles, "kk");
  Value *KK = B.createMul(LoopKK.IV, TileC, "kk.base");

  // for (i = ii; i < ii + TILE; i++)
  Value *IEnd = B.createAdd(II, TileC, "i.end");
  CountedLoop LoopI = beginLoop(B, II, IEnd, "i");
  Value *IRow = B.createMul(LoopI.IV, ArgN, "i.row");

  // for (j = jj; j < jj + TILE; j++)
  Value *JEnd = B.createAdd(JJ, TileC, "j.end");
  CountedLoop LoopJ = beginLoop(B, JJ, JEnd, "j");

  // sum = C[i*n + j]
  Value *CIdx = B.createAdd(IRow, LoopJ.IV, "c.idx");
  Value *CPtr = f32ElemPtr(B, ArgC, CIdx);
  Value *Sum0 = B.createLoad(Ctx.f32Ty(), CPtr, "sum0");

  // for (k = kk; k < kk + TILE; k++) sum = fma(A[i*n+k], B[k*n+j], sum)
  Value *KEnd = B.createAdd(KK, TileC, "k.end");
  CountedLoop LoopK = beginLoop(B, KK, KEnd, "k");
  Instruction *SumPhi = addLoopPhi(B, LoopK, Sum0, "sum");

  Value *AIdx = B.createAdd(IRow, LoopK.IV, "a.idx");
  Value *APtr = f32ElemPtr(B, ArgA, AIdx);
  Instruction *ALoad =
      cast<Instruction>(B.createLoad(Ctx.f32Ty(), APtr, "a.val"));
  ALoad->setLoc(SourceLoc{"matmul.c", 14, "matmul_kernel"});
  Value *KRow = B.createMul(LoopK.IV, ArgN, "k.row");
  Value *BIdx = B.createAdd(KRow, LoopJ.IV, "b.idx");
  Value *BPtr = f32ElemPtr(B, ArgB, BIdx);
  Value *BLoad = B.createLoad(Ctx.f32Ty(), BPtr, "b.val");
  Value *SumNext = B.createFma(ALoad, BLoad, SumPhi, "sum.next");
  setLatchValue(LoopK, SumPhi, SumNext);
  endLoop(B, LoopK);

  // C[i*n + j] = sum  (the loop-closed value of sum.next)
  B.createStore(SumNext, CPtr);

  endLoop(B, LoopJ);
  endLoop(B, LoopI);
  endLoop(B, LoopKK);
  endLoop(B, LoopJJ);
  endLoop(B, LoopII);
  B.createRet();

  //===------------------------------------------------------------===//
  // main() — self-timing wrapper.
  //===------------------------------------------------------------===//
  Function *Main = M.createFunction("main", Ctx.voidTy(), {});
  Main->setLoc(SourceLoc{"matmul.c", 30, "main"});
  BasicBlock *MainEntry = Main->createBlock("entry");
  B.setInsertPoint(MainEntry);
  Value *T0 = B.createCall(Clock, {}, "t0");
  B.createCall(Kernel, {M.global("A"), M.global("B"), M.global("C"),
                        B.i64(Config.N)});
  Value *T1 = B.createCall(Clock, {}, "t1");
  Value *Elapsed = B.createSub(T1, T0, "elapsed");
  B.createStore(Elapsed, M.global("SELF_CYCLES"));
  B.createRet();

  return W;
}

void MatmulWorkload::initialize(vm::Interpreter &Vm) const {
  SplitMix64 Rng(Config.Seed);
  uint64_t Elems = static_cast<uint64_t>(Config.N) * Config.N;
  std::vector<float> Data(Elems);

  for (uint64_t I = 0; I != Elems; ++I)
    Data[I] = static_cast<float>(Rng.nextDouble() * 2.0 - 1.0);
  Vm.writeMemory(Vm.globalAddress("A"), Data.data(), Elems * 4);

  for (uint64_t I = 0; I != Elems; ++I)
    Data[I] = static_cast<float>(Rng.nextDouble() * 2.0 - 1.0);
  Vm.writeMemory(Vm.globalAddress("B"), Data.data(), Elems * 4);

  std::memset(Data.data(), 0, Elems * 4);
  Vm.writeMemory(Vm.globalAddress("C"), Data.data(), Elems * 4);
}

double MatmulWorkload::verify(vm::Interpreter &Vm) const {
  unsigned N = Config.N;
  uint64_t Elems = static_cast<uint64_t>(N) * N;
  std::vector<float> A(Elems), Bv(Elems), C(Elems);
  Vm.readMemory(Vm.globalAddress("A"), A.data(), Elems * 4);
  Vm.readMemory(Vm.globalAddress("B"), Bv.data(), Elems * 4);
  Vm.readMemory(Vm.globalAddress("C"), C.data(), Elems * 4);

  double MaxError = 0;
  for (unsigned I = 0; I != N; ++I) {
    for (unsigned J = 0; J != N; ++J) {
      // Mirror the kernel's tiled accumulation order closely enough:
      // float accumulation over k.
      float Sum = 0.0f;
      for (unsigned K = 0; K != N; ++K)
        Sum = std::fmaf(A[I * N + K], Bv[K * N + J], Sum);
      double Err = std::fabs(static_cast<double>(Sum) - C[I * N + J]);
      // Different accumulation orders (tiling, vector lanes) make small
      // divergences expected; the caller thresholds the result.
      MaxError = std::max(MaxError, Err);
    }
  }
  return MaxError;
}

uint64_t MatmulWorkload::selfReportedCycles(vm::Interpreter &Vm) const {
  return Vm.readI64(Vm.globalAddress("SELF_CYCLES"));
}

void mperf::workloads::bindClock(vm::Interpreter &Vm,
                                 std::function<double()> ReadCycles) {
  Vm.registerNative(ClockFnName,
                    [ReadCycles](vm::Interpreter &In,
                                 const std::vector<vm::RtValue> &Args) {
                      (void)Args;
                      In.emitSyntheticOps(vm::OpClass::IntAlu, 4);
                      return vm::RtValue::ofInt(
                          static_cast<uint64_t>(ReadCycles()));
                    });
}

//===----------------------------------------------------------------------===//
// The immutable compiled form
//===----------------------------------------------------------------------===//

// The per-run helpers consult only the config, so MatmulProgram can
// delegate to a config-only MatmulWorkload view of itself.

void MatmulProgram::initialize(vm::Instance &Vm) const {
  MatmulWorkload W;
  W.Config = Config;
  W.initialize(Vm);
}

double MatmulProgram::verify(vm::Instance &Vm) const {
  MatmulWorkload W;
  W.Config = Config;
  return W.verify(Vm);
}

uint64_t MatmulProgram::selfReportedCycles(vm::Instance &Vm) const {
  MatmulWorkload W;
  W.Config = Config;
  return W.selfReportedCycles(Vm);
}

Expected<MatmulProgram>
mperf::workloads::compileMatmul(const MatmulConfig &Config,
                                const transform::TargetInfo *VectorTarget) {
  MatmulWorkload W = buildMatmul(Config);
  auto ProgOr = compileToProgram(std::move(W.M), VectorTarget);
  if (!ProgOr)
    return makeError<MatmulProgram>("matmul: " + ProgOr.errorMessage());
  MatmulProgram P;
  P.Prog = std::move(*ProgOr);
  P.Config = W.Config;
  return P;
}
