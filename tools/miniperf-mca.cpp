//===- miniperf-mca.cpp - Static performance prediction CLI --------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
// An llvm-mca-style static throughput analyzer over the simulator's own
// cost model (analysis/StaticCost.h): predicts cycles, instructions and
// cycle buckets for a (module, platform) pair without executing an op,
// with a per-loop-nest breakdown carrying file:line provenance.
//
//   miniperf-mca FILE.mir [--entry main] [--args 64,8]
//       Parse a textual IR module and predict it on every selected
//       platform.
//
//   miniperf-mca --workload triad [--scale N] [--vectorize]
//       Predict a builtin workload build (the same Program a sweep
//       scenario runs), entry and arguments included.
//
// Honesty contract: cells the model cannot prove are reported as
// "unknown: <reason>", never as a guessed number. Exit status: 0 on
// success (unknown cells included — they are an answer), 2 on usage/IO
// errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticCost.h"
#include "driver/Scenario.h"
#include "hw/Platform.h"
#include "ir/Parser.h"
#include "support/Format.h"
#include "support/JSON.h"
#include "support/Table.h"
#include "vm/Program.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mperf;

namespace {

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "miniperf-mca: %s\n", Message.c_str());
  std::exit(2);
}

void printUsage() {
  std::printf(
      "usage: miniperf-mca FILE.mir [options]\n"
      "       miniperf-mca --workload NAME [options]\n"
      "\n"
      "Statically predicts cycles, instructions and cycle buckets for\n"
      "a (module, platform) pair -- no execution -- with a per-loop\n"
      "breakdown carrying file:line provenance. Unpredictable cells\n"
      "are reported as unknown with the reason, never guessed.\n"
      "\n"
      "  --workload NAME    predict a builtin workload build instead of\n"
      "                     a file (sqlite,matmul,triad,memset,peakflops)\n"
      "  --scale N          workload scale multiplier (default 1)\n"
      "  --vectorize        vectorize the workload build\n"
      "  --entry NAME       entry function for file mode (default main)\n"
      "  --args LIST        comma list of integer entry arguments\n"
      "                     (file mode; workload builds carry their own)\n"
      "  --platforms SPEC   all (default) or comma list: u74,c906,c910,"
      "x60,i5\n"
      "  --json FILE        also write the machine-readable report\n"
      "                     (miniperf-mca-report/v1)\n"
      "  --help             this text\n");
}

uint64_t parseUnsigned(const std::string &Flag, const std::string &Text) {
  char *End = nullptr;
  uint64_t Value = std::strtoull(Text.c_str(), &End, 10);
  if (Text.empty() || End != Text.c_str() + Text.size())
    die("bad " + Flag + " value '" + Text + "' (expected a number)");
  return Value;
}

/// "64,8" -> {64, 8}; signed values allowed.
std::vector<int64_t> parseArgs(const std::string &List) {
  std::vector<int64_t> Values;
  std::string Token;
  std::istringstream SS(List);
  while (std::getline(SS, Token, ',')) {
    char *End = nullptr;
    int64_t V = std::strtoll(Token.c_str(), &End, 10);
    if (Token.empty() || End != Token.c_str() + Token.size())
      die("bad --args element '" + Token + "' (expected an integer)");
    Values.push_back(V);
  }
  return Values;
}

/// One prediction cell: a platform's result plus how the build was made.
struct Cell {
  std::string PlatformKey;
  std::string PlatformName;
  analysis::StaticCostResult R;
};

void printCell(const Cell &C) {
  if (!C.R.Known) {
    std::printf("%s: unknown: %s\n\n", C.PlatformName.c_str(),
                C.R.UnknownReason.c_str());
    return;
  }
  TextTable Summary("Static prediction — " + C.PlatformName);
  Summary.addHeader({"Quantity", "Predicted"});
  auto Row = [&Summary](const std::string &K, double V) {
    Summary.addRow({K, withCommas(static_cast<uint64_t>(V + 0.5))});
  };
  Row("cycles", C.R.Cycles);
  Row("instructions", C.R.Instret);
  Row("ir ops", C.R.Ops);
  Row("flops", C.R.Flops);
  Row("branch mispredicts", C.R.BranchMispredicts);
  Row("issue cycles", C.R.IssueCycles);
  Row("mem-stall cycles", C.R.MemStallCycles);
  Row("bad-spec cycles", C.R.BadSpecCycles);
  Row("bandwidth cycles", C.R.BandwidthCycles);
  Row("L1 misses", C.R.L1Misses);
  Row("L2 misses", C.R.L2Misses);
  Row("DRAM bytes", C.R.DramBytes);
  std::fputs(Summary.render().c_str(), stdout);

  if (!C.R.Functions.empty()) {
    TextTable Funcs("Per-function (calls x body)");
    Funcs.addHeader({"Function", "Location", "calls", "cycles", "ops"});
    for (const analysis::StaticFuncCost &F : C.R.Functions)
      Funcs.addRow({F.Name, F.Loc.str(), withCommas(
                        static_cast<uint64_t>(F.Calls + 0.5)),
                    withCommas(static_cast<uint64_t>(F.Cycles + 0.5)),
                    withCommas(static_cast<uint64_t>(F.Ops + 0.5))});
    std::fputs(Funcs.render().c_str(), stdout);
  }

  if (!C.R.Loops.empty()) {
    TextTable Loops("Per-loop (cycles include subloops)");
    Loops.addHeader({"Loop", "Location", "trips", "iterations", "cycles",
                     "ops"});
    for (const analysis::StaticLoopCost &L : C.R.Loops) {
      std::string Name(2 * (L.Depth - 1), ' ');
      Name += L.Function + ":" + L.HeaderName;
      Loops.addRow({Name, L.Loc.str(),
                    L.TripKnown ? withCommas(L.Trips) : "unknown",
                    withCommas(static_cast<uint64_t>(L.Iterations + 0.5)),
                    withCommas(static_cast<uint64_t>(L.Cycles + 0.5)),
                    withCommas(static_cast<uint64_t>(L.Ops + 0.5))});
    }
    std::fputs(Loops.render().c_str(), stdout);
  }
  std::printf("\n");
}

std::string cellsToJson(const std::string &Source, const std::string &Entry,
                        const std::vector<Cell> &Cells) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.string("miniperf-mca-report/v1");
  W.key("source");
  W.string(Source);
  W.key("entry");
  W.string(Entry);
  W.key("results");
  W.beginArray();
  for (const Cell &C : Cells) {
    W.beginObject();
    W.key("platform");
    W.string(C.PlatformKey);
    W.key("platform_name");
    W.string(C.PlatformName);
    W.key("known");
    W.boolean(C.R.Known);
    if (!C.R.Known) {
      W.key("reason");
      W.string(C.R.UnknownReason);
      W.endObject();
      continue;
    }
    W.key("predicted");
    W.beginObject();
    W.key("cycles");
    W.number(C.R.Cycles);
    W.key("instructions");
    W.number(C.R.Instret);
    W.key("ir_ops");
    W.number(C.R.Ops);
    W.key("flops");
    W.number(C.R.Flops);
    W.key("branch_mispredicts");
    W.number(C.R.BranchMispredicts);
    W.key("issue_cycles");
    W.number(C.R.IssueCycles);
    W.key("mem_stall_cycles");
    W.number(C.R.MemStallCycles);
    W.key("bad_spec_cycles");
    W.number(C.R.BadSpecCycles);
    W.key("bandwidth_cycles");
    W.number(C.R.BandwidthCycles);
    W.key("l1_misses");
    W.number(C.R.L1Misses);
    W.key("l2_misses");
    W.number(C.R.L2Misses);
    W.key("dram_bytes");
    W.number(C.R.DramBytes);
    W.endObject();
    W.key("functions");
    W.beginArray();
    for (const analysis::StaticFuncCost &F : C.R.Functions) {
      W.beginObject();
      W.key("function");
      W.string(F.Name);
      W.key("loc");
      W.string(F.Loc.str());
      W.key("calls");
      W.number(F.Calls);
      W.key("cycles");
      W.number(F.Cycles);
      W.key("ops");
      W.number(F.Ops);
      W.endObject();
    }
    W.endArray();
    W.key("loops");
    W.beginArray();
    for (const analysis::StaticLoopCost &L : C.R.Loops) {
      W.beginObject();
      W.key("function");
      W.string(L.Function);
      W.key("header");
      W.string(L.HeaderName);
      W.key("loc");
      W.string(L.Loc.str());
      W.key("depth");
      W.number(static_cast<uint64_t>(L.Depth));
      W.key("trip_known");
      W.boolean(L.TripKnown);
      W.key("trips");
      W.number(L.Trips);
      W.key("entries");
      W.number(L.Entries);
      W.key("iterations");
      W.number(L.Iterations);
      W.key("cycles");
      W.number(L.Cycles);
      W.key("ops");
      W.number(L.Ops);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

} // namespace

int main(int argc, char **argv) {
  std::string File, WorkloadName, EntryFlag, ArgsFlag, PlatformSpec = "all",
                                                       JsonPath;
  unsigned Scale = 1;
  bool Vectorize = false;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&]() -> std::string {
      if (I + 1 == argc)
        die(Arg + " requires a value");
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (Arg == "--workload") {
      WorkloadName = Value();
    } else if (Arg == "--scale") {
      Scale = static_cast<unsigned>(parseUnsigned(Arg, Value()));
      if (Scale == 0)
        die("--scale must be positive");
    } else if (Arg == "--vectorize") {
      Vectorize = true;
    } else if (Arg == "--entry") {
      EntryFlag = Value();
    } else if (Arg == "--args") {
      ArgsFlag = Value();
    } else if (Arg == "--platforms") {
      PlatformSpec = Value();
    } else if (Arg == "--json") {
      JsonPath = Value();
    } else if (!Arg.empty() && Arg[0] == '-') {
      die("unknown option '" + Arg + "' (see --help)");
    } else if (File.empty()) {
      File = Arg;
    } else {
      die("more than one input file ('" + File + "', '" + Arg + "')");
    }
  }

  if (File.empty() == WorkloadName.empty()) {
    printUsage();
    return 2;
  }
  if (!WorkloadName.empty() && (!EntryFlag.empty() || !ArgsFlag.empty()))
    die("--entry/--args apply to file mode; workload builds carry their own");

  auto PlatformsOr = driver::selectPlatforms(PlatformSpec);
  if (!PlatformsOr)
    die(PlatformsOr.errorMessage());

  std::string Source, Entry;
  std::vector<Cell> Cells;

  if (!WorkloadName.empty()) {
    // Workload mode: the same compiled Program a sweep scenario runs,
    // per platform (the build is target- and vectorize-dependent).
    auto WorkloadsOr = driver::selectWorkloads(WorkloadName, Scale);
    if (!WorkloadsOr)
      die(WorkloadsOr.errorMessage());
    if (WorkloadsOr->size() != 1)
      die("--workload takes exactly one workload name");
    const driver::WorkloadDesc &W = WorkloadsOr->front();
    Source = "workload:" + W.Name + "/" + W.Variant +
             (Vectorize ? "+vec" : "");
    for (const hw::Platform &P : *PlatformsOr) {
      auto CWOr = W.Compile(P.Target, Vectorize);
      if (!CWOr)
        die(W.Name + "@" + driver::platformKey(P) + ": " +
            CWOr.errorMessage());
      Entry = CWOr->Entry;
      std::vector<int64_t> Args;
      Args.reserve(CWOr->Args.size());
      for (const vm::RtValue &V : CWOr->Args)
        Args.push_back(static_cast<int64_t>(V.I[0]));
      Cells.push_back({driver::platformKey(P), P.CoreName,
                       analysis::computeStaticCost(*CWOr->Prog, P,
                                                   CWOr->Entry, Args)});
    }
  } else {
    // File mode: parse once (file:line provenance flows from the parser
    // into every loop row), compile once, predict per platform.
    std::ifstream In(File);
    if (!In)
      die("cannot open '" + File + "'");
    std::ostringstream SS;
    SS << In.rdbuf();
    auto ModOr = ir::parseModule(SS.str(), File);
    if (!ModOr)
      die(ModOr.errorMessage());
    auto ProgOr = vm::Program::compile(std::move(*ModOr));
    if (!ProgOr)
      die(ProgOr.errorMessage());
    Source = File;
    Entry = EntryFlag.empty() ? "main" : EntryFlag;
    std::vector<int64_t> Args = parseArgs(ArgsFlag);
    if (!(*ProgOr)->findFunction(Entry))
      die("no function '" + Entry + "' in '" + File + "'");
    for (const hw::Platform &P : *PlatformsOr)
      Cells.push_back({driver::platformKey(P), P.CoreName,
                       analysis::computeStaticCost(**ProgOr, P, Entry,
                                                   Args)});
  }

  for (const Cell &C : Cells)
    printCell(C);

  size_t Known = 0;
  for (const Cell &C : Cells)
    Known += C.R.Known ? 1 : 0;
  std::printf("miniperf-mca: %s entry %s: %zu/%zu platform(s) predicted\n",
              Source.c_str(), Entry.c_str(), Known, Cells.size());

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out)
      die("cannot write '" + JsonPath + "'");
    Out << cellsToJson(Source, Entry, Cells) << "\n";
  }
  return 0;
}
