//===- Metrics.cpp - Self-metrics registry -------------------------------------===//
//
// Part of the miniperf project, a reproduction of "Dissecting RISC-V
// Performance" (PACT 2025). See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/JSON.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

using namespace mperf;
using namespace mperf::metrics;

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

struct Registry::Impl {
  mutable std::mutex Lock;
  // Node-based maps: instrument addresses are stable across inserts,
  // so call sites may cache references. std::less<> enables
  // string_view lookups without a temporary string on the hit path.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

Registry &Registry::global() {
  static Registry R;
  return R;
}

Registry::Impl &Registry::impl() const {
  static Impl I;
  return I;
}

template <typename T>
static T &getOrCreate(
    std::mutex &Lock,
    std::map<std::string, std::unique_ptr<T>, std::less<>> &Map,
    std::string_view Name) {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Map.find(Name);
  if (It == Map.end())
    It = Map.emplace(std::string(Name), std::make_unique<T>()).first;
  return *It->second;
}

Counter &Registry::counter(std::string_view Name) {
  Impl &I = impl();
  return getOrCreate(I.Lock, I.Counters, Name);
}

Gauge &Registry::gauge(std::string_view Name) {
  Impl &I = impl();
  return getOrCreate(I.Lock, I.Gauges, Name);
}

Histogram &Registry::histogram(std::string_view Name) {
  Impl &I = impl();
  return getOrCreate(I.Lock, I.Histograms, Name);
}

Snapshot Registry::snapshot() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Guard(I.Lock);
  Snapshot S;
  for (const auto &[Name, C] : I.Counters)
    S.Counters.emplace_back(Name, C->value());
  for (const auto &[Name, G] : I.Gauges)
    S.Gauges.emplace_back(Name, G->value());
  for (const auto &[Name, H] : I.Histograms) {
    Snapshot::Hist SH;
    SH.Name = Name;
    SH.Count = H->count();
    SH.Sum = H->sum();
    for (size_t B = 0; B != Histogram::NumBuckets; ++B)
      if (uint64_t N = H->bucket(B))
        SH.Buckets.emplace_back(B == 0 ? 0 : (1ull << (B - 1)) * 2 - 1, N);
    S.Histograms.push_back(std::move(SH));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

Snapshot Snapshot::delta(const Snapshot &Begin, const Snapshot &End) {
  Snapshot D;
  auto BeginCounter = [&Begin](const std::string &Name) -> uint64_t {
    for (const auto &[N, V] : Begin.Counters)
      if (N == Name)
        return V;
    return 0;
  };
  for (const auto &[Name, V] : End.Counters)
    D.Counters.emplace_back(Name, V - BeginCounter(Name));
  D.Gauges = End.Gauges;
  for (const Hist &EH : End.Histograms) {
    const Hist *BH = nullptr;
    for (const Hist &H : Begin.Histograms)
      if (H.Name == EH.Name) {
        BH = &H;
        break;
      }
    Hist DH;
    DH.Name = EH.Name;
    DH.Count = EH.Count - (BH ? BH->Count : 0);
    DH.Sum = EH.Sum - (BH ? BH->Sum : 0);
    for (const auto &[Bound, N] : EH.Buckets) {
      uint64_t Before = 0;
      if (BH)
        for (const auto &[BBound, BN] : BH->Buckets)
          if (BBound == Bound) {
            Before = BN;
            break;
          }
      if (N - Before)
        DH.Buckets.emplace_back(Bound, N - Before);
    }
    D.Histograms.push_back(std::move(DH));
  }
  return D;
}

void Snapshot::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, V] : Counters) {
    W.key(Name);
    W.number(V);
  }
  W.endObject();
  W.key("gauges");
  W.beginObject();
  for (const auto &[Name, V] : Gauges) {
    W.key(Name);
    W.number(V);
  }
  W.endObject();
  W.key("histograms");
  W.beginObject();
  for (const Hist &H : Histograms) {
    W.key(H.Name);
    W.beginObject();
    W.key("count");
    W.number(H.Count);
    W.key("sum");
    W.number(H.Sum);
    W.key("buckets");
    W.beginObject();
    for (const auto &[Bound, N] : H.Buckets) {
      W.key("<=" + std::to_string(Bound));
      W.number(N);
    }
    W.endObject();
    W.endObject();
  }
  W.endObject();
  W.endObject();
}

std::string Snapshot::toJson() const {
  JsonWriter W;
  writeJson(W);
  return W.str();
}

//===----------------------------------------------------------------------===//
// ScopedTimerNs
//===----------------------------------------------------------------------===//

ScopedTimerNs::ScopedTimerNs(Counter &C)
    : C(C), StartNs(trace::Tracer::nowNs()) {}

ScopedTimerNs::~ScopedTimerNs() { C.add(trace::Tracer::nowNs() - StartNs); }
